"""Tests for action schemas, grounding, and static pruning."""

import pytest

from repro.planning.symbolic.actions import (
    ActionSchema,
    GroundAction,
    ground_schemas,
    static_atoms,
)

MOVE = ActionSchema(
    name="Move",
    parameters=["b", "x", "y"],
    preconditions=["On(?b,?x)", "Clear(?b)", "Clear(?y)"],
    effects=["On(?b,?y)", "Clear(?x)", "!On(?b,?x)", "!Clear(?y)"],
)


def test_schema_undeclared_variable_raises():
    with pytest.raises(ValueError, match="undeclared"):
        ActionSchema(
            name="Bad",
            parameters=["b"],
            preconditions=["On(?b,?x)"],
            effects=[],
        )


def test_ground_substitutes_everything():
    action = MOVE.ground({"b": "A", "x": "B", "y": "C"})
    assert action.name == "Move(A,B,C)"
    assert "On(A,B)" in action.preconditions
    assert "On(A,C)" in action.add_effects
    assert "On(A,B)" in action.delete_effects


def test_ground_all_distinct_parameters():
    actions = list(MOVE.ground_all(["A", "B", "C"]))
    # 3 objects, 3 distinct slots -> 3! groundings.
    assert len(actions) == 6
    names = {a.name for a in actions}
    assert "Move(A,B,C)" in names
    assert "Move(A,A,B)" not in names


def test_ground_all_nondistinct():
    schema = ActionSchema(
        name="Dup",
        parameters=["x", "y"],
        preconditions=[],
        effects=["P(?x,?y)"],
        distinct=False,
    )
    actions = list(schema.ground_all(["A", "B"]))
    assert len(actions) == 4


def test_parameterless_schema_grounds_once():
    schema = ActionSchema(
        name="Noop", parameters=[], preconditions=["P"], effects=["Q"]
    )
    actions = list(schema.ground_all(["A", "B"]))
    assert len(actions) == 1
    assert actions[0].name == "Noop"


def test_applicable_and_apply():
    action = MOVE.ground({"b": "A", "x": "B", "y": "C"})
    state = frozenset({"On(A,B)", "Clear(A)", "Clear(C)"})
    assert action.applicable(state)
    succ = action.apply(state)
    assert "On(A,C)" in succ
    assert "On(A,B)" not in succ
    assert "Clear(B)" in succ
    assert "Clear(C)" not in succ


def test_not_applicable_when_precondition_missing():
    action = MOVE.ground({"b": "A", "x": "B", "y": "C"})
    assert not action.applicable(frozenset({"On(A,B)", "Clear(A)"}))


def test_negative_preconditions():
    schema = ActionSchema(
        name="Sneak",
        parameters=["x"],
        preconditions=["At(?x)", "!Seen(?x)"],
        effects=["Done(?x)"],
    )
    action = schema.ground({"x": "A"})
    assert action.applicable(frozenset({"At(A)"}))
    assert not action.applicable(frozenset({"At(A)", "Seen(A)"}))


def test_static_atoms_detection():
    schemas = [MOVE]
    initial = frozenset({"Block(A)", "On(A,B)", "Clear(A)"})
    statics = static_atoms(schemas, initial)
    assert "Block(A)" in statics
    assert "On(A,B)" not in statics  # Move changes On
    assert "Clear(A)" not in statics  # Move changes Clear


def test_ground_schemas_prunes_impossible_instances():
    typed_move = ActionSchema(
        name="Move",
        parameters=["b", "x", "y"],
        preconditions=["Block(?b)", "On(?b,?x)", "Clear(?b)", "Clear(?y)"],
        effects=["On(?b,?y)", "Clear(?x)", "!On(?b,?x)", "!Clear(?y)"],
    )
    initial = frozenset({"Block(A)", "Block(B)", "On(A,B)", "Clear(A)"})
    actions = ground_schemas([typed_move], ["A", "B", "Table"], initial)
    # No grounding may move the Table (Block(Table) is false).
    assert all(not a.name.startswith("Move(Table") for a in actions)
    # Static preconditions are stripped from survivors.
    for action in actions:
        assert not any(p.startswith("Block(") for p in action.preconditions)
