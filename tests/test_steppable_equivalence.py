"""Batch vs steppable equivalence for every converted kernel.

The steppable protocol's contract is that driving an episode one
``step()`` at a time — the per-iteration real-time path — produces
*bitwise-identical* outputs and operation counters to the pre-refactor
batch ``run_roi``.  Each converted kernel's original batch body is
frozen here verbatim (as it stood before the conversion) and compared
against both the inherited ``run_roi`` (which now drives the step loop)
and a manually stepped session.

Plus: hypothesis properties for :class:`LatencyHistogram` merges across
step sessions — per-episode histograms folded together must agree with
one histogram over the concatenated per-step latencies.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import load_all_kernels, registry
from repro.rt.histogram import LatencyHistogram

load_all_kernels()


def assert_bitwise_equal(a, b, path="output"):
    """Recursively assert two kernel outputs carry identical numbers.

    Arrays compare element-exact (no tolerance), scalars with ``==``;
    arbitrary objects (filters, controllers) recurse into ``vars()``
    with profilers skipped — they hold wall-clock timings, the one
    thing the two paths legitimately do differently.
    """
    if isinstance(a, PhaseProfiler) or isinstance(b, PhaseProfiler):
        return
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: keys differ"
        for key in a:
            assert_bitwise_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: lengths differ"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_bitwise_equal(x, y, f"{path}[{i}]")
    elif isinstance(a, np.ndarray):
        assert a.shape == b.shape, f"{path}: shapes differ"
        assert a.dtype == b.dtype, f"{path}: dtypes differ"
        assert np.array_equal(a, b, equal_nan=True), f"{path}: values differ"
    elif isinstance(a, (bool, int, float, complex, np.generic)):
        if isinstance(a, float) and np.isnan(a) and np.isnan(b):
            return
        assert a == b, f"{path}: {a!r} != {b!r}"
    elif a is None or isinstance(a, (str, bytes)):
        assert a == b, f"{path}: {a!r} != {b!r}"
    elif hasattr(a, "__dict__"):
        assert_bitwise_equal(vars(a), vars(b), f"{path}.__dict__")
    else:  # pragma: no cover - exotic output type
        assert a == b, f"{path}: {a!r} != {b!r}"


# -- frozen pre-refactor batch implementations --------------------------------


def frozen_pfl(config, state, profiler):
    from repro.perception.particle_filter import ParticleFilter

    pf = ParticleFilter(
        state.grid,
        state.lidar,
        state.motion_model,
        n_particles=config.particles,
        hit_sigma=config.hit_sigma,
        rng=np.random.default_rng(config.seed),
        profiler=profiler,
        backend=config.backend,
    )
    pf.initialize_uniform()
    spread_before = pf.spread()
    for odom, scan in zip(state.odometry, state.scans):
        pf.update(odom, scan)
    estimate = pf.estimate()
    true_final = state.true_poses[-1]
    return {
        "estimate": estimate,
        "true_pose": true_final,
        "error": estimate.distance_to(true_final),
        "spread_before": spread_before,
        "spread_after": pf.spread(),
    }


def frozen_ekfslam(config, state, profiler):
    from repro.perception.ekf_slam import EKFSlam

    slam = EKFSlam(
        n_landmarks=len(state.landmarks),
        range_sigma=config.range_sigma,
        bearing_sigma=config.bearing_sigma,
        profiler=profiler,
    )
    slam.set_pose(state.true_poses[0])
    pose_errors = []
    for (v, w), obs, true_pose in zip(
        state.controls, state.observations, state.true_poses[1:]
    ):
        slam.predict(v, w, state.dt)
        with profiler.phase("sensing"):
            pass
        slam.update(obs)
        with profiler.phase("bookkeeping"):
            pose_errors.append(slam.pose_estimate().distance_to(true_pose))
    landmark_errors = [
        float(np.linalg.norm(slam.landmark_estimate(j) - state.landmarks[j]))
        for j in range(len(state.landmarks))
        if slam.seen[j]
    ]
    return {
        "pose_errors": pose_errors,
        "final_pose_error": pose_errors[-1],
        "landmark_errors": landmark_errors,
        "mean_landmark_error": float(np.mean(landmark_errors)),
        "slam": slam,
    }


def frozen_srec(config, state, profiler):
    from repro.perception.scene_recon import SceneReconstruction

    recon = SceneReconstruction(
        icp_iterations=config.icp_iterations,
        profiler=profiler,
        backend=config.backend,
    )
    pose_errors = []
    for scan in state.scans:
        estimated = recon.integrate(scan.points)
        true = scan.true_pose
        pose_errors.append(
            float(np.linalg.norm(estimated.translation - true.translation))
        )
    return {
        "pose_errors": pose_errors,
        "final_pose_error": pose_errors[-1],
        "model_points": recon.n_points,
        "recon": recon,
    }


def frozen_mpc(config, state, profiler):
    from repro.control.mpc import ModelPredictiveController
    from repro.robots.bicycle import BicycleModel, BicycleState

    model = BicycleModel(max_speed=config.speed * 1.5)
    controller = ModelPredictiveController(
        model,
        horizon=config.horizon,
        dt=config.dt,
        iterations=config.iterations,
        profiler=profiler,
    )
    initial = BicycleState(x=0.0, y=0.0, theta=0.0, v=config.speed)
    # The pre-refactor receding-horizon loop, inlined verbatim.
    reference = state
    prof = controller.profiler
    n = len(reference) - 1
    current = initial
    driven = [initial.as_array()]
    applied = []
    errors = []
    for t in range(n):
        with prof.phase("setup"):
            window = controller._window(reference, t)
        plan = controller.solve(current, window)
        u = plan[0]
        with prof.phase("dynamics"):
            current = controller.model.step(current, u[0], u[1], controller.dt)
        driven.append(current.as_array())
        applied.append(u.copy())
        errors.append(
            float(np.hypot(current.x - reference[t + 1, 0],
                           current.y - reference[t + 1, 1]))
        )
    outcome = {
        "states": np.vstack(driven),
        "controls": np.vstack(applied) if applied else np.empty((0, 2)),
        "errors": np.array(errors),
    }
    outcome["mean_error"] = float(outcome["errors"].mean())
    outcome["max_error"] = float(outcome["errors"].max())
    return outcome


def frozen_cem(config, state, profiler):
    from repro.control.cem import CrossEntropyMethod

    cem = CrossEntropyMethod(
        reward_fn=state.reward,
        bounds=state.parameter_bounds,
        n_samples=config.samples,
        elite_fraction=config.elite_fraction,
        rng=np.random.default_rng(config.seed),
        profiler=profiler,
    )
    policy, best = cem.optimize(config.iterations)
    return {
        "policy": policy,
        "best_reward": best,
        "reward_history": cem.reward_history,
        "sample_rewards": cem.sample_rewards,
        "final_landing_error": -best,
    }


def frozen_dmp(config, state, profiler):
    from repro.control.dmp import DynamicMovementPrimitive

    dmp = DynamicMovementPrimitive(
        n_basis=config.basis, k_gain=config.k_gain, profiler=profiler
    )
    dmp.fit(state, dt=0.01)
    # The pre-refactor Euler integration loop, inlined verbatim.
    dt = config.dt
    y0 = dmp.y0.copy()
    goal = dmp.goal.copy()
    tau = dmp.tau
    steps = int(round(tau / dt)) + 1
    dims = len(y0)
    ys = np.empty((steps, dims))
    vs = np.empty((steps, dims))
    accs = np.empty((steps, dims))
    y = y0.copy()
    v = np.zeros(dims)
    s = 1.0
    with profiler.phase("integrate"):
        for t in range(steps):
            with profiler.phase("basis_eval"):
                psi = dmp._basis(np.array([s]))[0]
                denom = float(psi.sum()) + 1e-10
                f = (dmp.weights @ psi) * s / denom
                profiler.count("basis_evaluations", dmp.n_basis)
            acc = (
                dmp.k_gain * (goal - y) - dmp.d_gain * v + f
            ) / (tau * tau)
            ys[t] = y
            vs[t] = v / tau
            accs[t] = acc
            v = v + acc * dt * tau
            y = y + v * dt / tau
            s = s + (-dmp.alpha_s * s) * dt / tau
    demo_resampled = np.column_stack(
        [
            np.interp(
                np.linspace(0, 1, len(ys)),
                np.linspace(0, 1, len(state)),
                state[:, d],
            )
            for d in range(state.shape[1])
        ]
    )
    rms = float(np.sqrt(np.mean((ys - demo_resampled) ** 2)))
    return {
        "trajectory": ys,
        "velocity": vs,
        "acceleration": accs,
        "reference": demo_resampled,
        "rms_error": rms,
        "endpoint_error": float(np.linalg.norm(ys[-1] - state[-1])),
    }


#: (kernel, frozen batch fn, small-but-representative config overrides).
CASES = [
    (
        "01.pfl",
        frozen_pfl,
        dict(particles=80, beams=6, steps=4, map_rows=80, map_cols=100),
    ),
    ("02.ekfslam", frozen_ekfslam, dict(steps=20)),
    (
        "03.srec",
        frozen_srec,
        dict(frames=3, scan_points=200, scene_points=900, icp_iterations=4),
    ),
    ("14.mpc", frozen_mpc, dict(steps=8, horizon=5, iterations=2)),
    ("15.cem", frozen_cem, dict(samples=8, iterations=3)),
    ("13.dmp", frozen_dmp, dict(demo_steps=60, dt=0.02, basis=12)),
]

CASE_IDS = [case[0] for case in CASES]


def _make(name, overrides):
    cls = registry.get(name)
    kernel = cls()
    config = cls.config_cls(**overrides)
    state = kernel.setup(config)
    return kernel, config, state


@pytest.mark.parametrize("name,frozen,overrides", CASES, ids=CASE_IDS)
def test_converted_kernels_are_steppable(name, frozen, overrides):
    assert registry.get(name).is_steppable()


@pytest.mark.parametrize("name,frozen,overrides", CASES, ids=CASE_IDS)
def test_batch_run_roi_matches_frozen_implementation(
    name, frozen, overrides
):
    """Inherited ``run_roi`` (the step loop) == pre-refactor batch body."""
    kernel, config, state = _make(name, overrides)
    batch_prof = PhaseProfiler()
    frozen_prof = PhaseProfiler()
    got = kernel.run_roi(config, state, batch_prof)
    want = frozen(config, state, frozen_prof)
    assert_bitwise_equal(got, want)
    assert batch_prof.counters == frozen_prof.counters


@pytest.mark.parametrize("name,frozen,overrides", CASES, ids=CASE_IDS)
def test_manual_stepping_matches_frozen_implementation(
    name, frozen, overrides
):
    """Driving the session step by step == pre-refactor batch body."""
    kernel, config, state = _make(name, overrides)
    session = kernel.open_session(config, state=state)
    steps = 0
    while not session.exhausted:
        session.step()
        steps += 1
    assert steps == session.total_steps > 1
    got = session.finish()
    frozen_prof = PhaseProfiler()
    want = frozen(config, state, frozen_prof)
    assert_bitwise_equal(got, want)
    assert session.profiler.counters == frozen_prof.counters


@pytest.mark.parametrize("name,frozen,overrides", CASES, ids=CASE_IDS)
def test_reopened_session_replays_the_episode(name, frozen, overrides):
    """A second episode over the same state reproduces the first."""
    kernel, config, state = _make(name, overrides)
    first = kernel.open_session(config, state=state)
    while not first.exhausted:
        first.step()
    second = kernel.open_session(config, state=state)
    while not second.exhausted:
        second.step()
    assert_bitwise_equal(second.finish(), first.finish())
    assert second.profiler.counters == first.profiler.counters


# -- LatencyHistogram merge across step sessions ------------------------------

latencies = st.lists(
    st.floats(
        min_value=1e-7, max_value=10.0, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(
    episodes=st.lists(latencies, min_size=1, max_size=6),
)
def test_histogram_merge_across_step_sessions(episodes):
    """Per-episode histograms merged == one histogram over all steps.

    Models the per-step rt mode: each episode records its own per-step
    latencies; folding the episode histograms together must preserve
    counts, totals, extremes, and every bucket — so quantiles computed
    from the merged histogram match the single-stream histogram exactly.
    """
    merged = LatencyHistogram()
    for episode in episodes:
        per_episode = LatencyHistogram()
        per_episode.record_many(episode)
        merged.merge(per_episode)
    flat = LatencyHistogram()
    flat.record_many([value for episode in episodes for value in episode])
    assert merged.count == flat.count
    assert merged.sum == pytest.approx(flat.sum)
    assert merged.min == flat.min
    assert merged.max == flat.max
    for q in (0.0, 0.5, 0.9, 0.99, 1.0):
        assert merged.quantile(q) == flat.quantile(q)


@settings(max_examples=30, deadline=None)
@given(values=latencies, split=st.integers(min_value=0, max_value=60))
def test_histogram_merge_is_order_independent(values, split):
    """Splitting one step stream at any point merges to the same summary."""
    cut = min(split, len(values))
    left, right = LatencyHistogram(), LatencyHistogram()
    left.record_many(values[:cut])
    right.record_many(values[cut:])
    a = LatencyHistogram()
    a.merge(left)
    a.merge(right)
    b = LatencyHistogram()
    b.merge(right)
    b.merge(left)
    assert a.summary(scale=1e3) == b.summary(scale=1e3)
