"""Tests for the periodic scheduler: pacing, jitter, overrun policies.

All timing uses a fake monotonic clock whose ``sleep`` advances it
exactly, so every release, response, and skip count is deterministic.
"""

from __future__ import annotations

import pytest

from repro.rt.scheduler import JobOutput, JobRecord, PeriodicScheduler


class FakeClock:
    """Deterministic clock; ``sleep`` advances it by exactly the request."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, dt):
        self.sleeps.append(dt)
        self.now += dt


def run_with_durations(durations, period=10.0, deadline=None, overrun="skip",
                       warmup=0):
    """Run one schedule where job i takes ``durations[i]`` fake seconds."""
    clock = FakeClock()
    queue = iter(durations)

    def job(index):
        clock.now += next(queue)
        return index

    scheduler = PeriodicScheduler(
        period_s=period,
        deadline_s=deadline,
        overrun=overrun,
        clock=clock,
        sleep=clock.sleep,
    )
    result = scheduler.run(
        job, jobs=len(durations) - warmup, warmup=warmup, keep_outputs=True
    )
    return result, clock


def test_on_time_jobs_release_on_the_grid_with_zero_jitter():
    result, clock = run_with_durations([1.0, 1.0, 1.0, 1.0])
    assert [r.release_s for r in result.records] == [0.0, 10.0, 20.0, 30.0]
    assert all(r.jitter_s == 0.0 for r in result.records)
    assert all(r.response_s == 1.0 for r in result.records)
    assert all(r.latency_s == 1.0 for r in result.records)
    assert result.skipped_releases == 0
    # The loop actually slept to pace (three inter-release gaps of 9s).
    assert clock.sleeps == [9.0, 9.0, 9.0]


def test_skip_policy_drops_releases_that_came_due_mid_job():
    result, _ = run_with_durations([25.0, 1.0, 1.0, 1.0], overrun="skip")
    # Job 0 runs [0, 25]; releases at 10 and 20 are skipped; next is 30.
    assert [r.release_s for r in result.records] == [0.0, 30.0, 40.0, 50.0]
    assert result.skipped_releases == 2
    assert result.records[1].jitter_s == 0.0


def test_skip_policy_job_ending_exactly_on_grid_catches_that_release():
    result, _ = run_with_durations([20.0, 1.0], overrun="skip")
    # Ending exactly at t=20 catches the t=20 release: only t=10 skipped.
    assert [r.release_s for r in result.records] == [0.0, 20.0]
    assert result.skipped_releases == 1
    assert result.records[1].jitter_s == 0.0


def test_queue_policy_keeps_every_release_and_runs_backlog_back_to_back():
    result, _ = run_with_durations([25.0, 1.0, 1.0, 1.0], overrun="queue")
    assert [r.release_s for r in result.records] == [0.0, 10.0, 20.0, 30.0]
    assert [r.start_s for r in result.records] == [0.0, 25.0, 26.0, 30.0]
    assert [r.jitter_s for r in result.records] == [0.0, 15.0, 6.0, 0.0]
    # Queued jobs are charged from their scheduled release.
    assert result.records[1].response_s == pytest.approx(16.0)
    assert result.skipped_releases == 0


def test_deadline_classification_is_inclusive():
    record = JobRecord(index=0, release_s=0.0, start_s=0.0, end_s=10.0)
    assert record.met_deadline(10.0)
    assert not record.met_deadline(9.999)


def test_miss_accounting():
    result, _ = run_with_durations(
        [25.0, 1.0, 1.0, 1.0], deadline=10.0, overrun="queue"
    )
    # Responses: 25, 16, 7, 1 -> two misses out of four.
    assert result.miss_count() == 2
    assert result.miss_rate() == pytest.approx(0.5)


def test_warmup_jobs_recorded_but_excluded_from_stats():
    result, _ = run_with_durations(
        [50.0, 1.0, 1.0], deadline=10.0, overrun="skip", warmup=1
    )
    assert len(result.records) == 3
    assert result.records[0].warmup
    assert len(result.measured()) == 2
    # The warmup job overran by 4 periods but charges no skips/misses.
    assert result.skipped_releases == 0
    assert result.miss_count() == 0
    # Warmup jobs produce no outputs either.
    assert result.outputs == [1, 2]


def test_outputs_kept_only_on_request():
    clock = FakeClock()
    scheduler = PeriodicScheduler(
        period_s=1.0, clock=clock, sleep=clock.sleep
    )
    result = scheduler.run(lambda i: i * 2, jobs=3)
    assert result.outputs == []


def test_deterministic_under_fake_clock():
    a, _ = run_with_durations([25.0, 3.0, 12.0, 1.0], overrun="skip")
    b, _ = run_with_durations([25.0, 3.0, 12.0, 1.0], overrun="skip")
    assert [
        (r.release_s, r.start_s, r.end_s) for r in a.records
    ] == [(r.release_s, r.start_s, r.end_s) for r in b.records]
    assert a.skipped_releases == b.skipped_releases


def test_deadline_defaults_to_period():
    scheduler = PeriodicScheduler(period_s=0.25)
    assert scheduler.deadline_s == 0.25


def test_invalid_parameters_raise():
    with pytest.raises(ValueError, match="period"):
        PeriodicScheduler(period_s=0.0)
    with pytest.raises(ValueError, match="deadline"):
        PeriodicScheduler(period_s=1.0, deadline_s=-1.0)
    with pytest.raises(ValueError, match="overrun"):
        PeriodicScheduler(period_s=1.0, overrun="explode")
    clock = FakeClock()
    scheduler = PeriodicScheduler(
        period_s=1.0, clock=clock, sleep=clock.sleep
    )
    with pytest.raises(ValueError, match="jobs"):
        scheduler.run(lambda i: None, jobs=0)


def test_job_output_meta_lands_on_the_record():
    clock = FakeClock()
    scheduler = PeriodicScheduler(
        period_s=1.0, clock=clock, sleep=clock.sleep
    )
    result = scheduler.run(
        lambda i: JobOutput(value=i * 2, meta={"episode": 0, "step": i}),
        jobs=3,
        keep_outputs=True,
    )
    # The wrapper is transparent: outputs carry the value, records the meta.
    assert result.outputs == [0, 2, 4]
    assert [r.meta for r in result.records] == [
        {"episode": 0, "step": 0},
        {"episode": 0, "step": 1},
        {"episode": 0, "step": 2},
    ]
    assert not result.stopped_early


def test_plain_outputs_leave_meta_unset():
    clock = FakeClock()
    scheduler = PeriodicScheduler(
        period_s=1.0, clock=clock, sleep=clock.sleep
    )
    result = scheduler.run(lambda i: i, jobs=2, keep_outputs=True)
    assert result.outputs == [0, 1]
    assert all(r.meta is None for r in result.records)


def test_stop_iteration_ends_the_schedule_early():
    clock = FakeClock()
    scheduler = PeriodicScheduler(
        period_s=1.0, clock=clock, sleep=clock.sleep
    )

    def job(index):
        if index == 2:
            raise StopIteration
        return index

    result = scheduler.run(job, jobs=10, keep_outputs=True)
    assert result.stopped_early
    assert result.outputs == [0, 1]
    assert len(result.records) == 2  # the stopping release leaves no record


def test_real_monotonic_clock_smoke():
    """A tiny run on the real clock: sane ordering, non-negative times."""
    scheduler = PeriodicScheduler(period_s=0.002, deadline_s=0.002)
    result = scheduler.run(lambda i: None, jobs=3)
    for record in result.records:
        assert record.end_s >= record.start_s >= record.release_s >= 0.0
    releases = [r.release_s for r in result.records]
    assert releases == sorted(releases)
