"""Tests for RRT (08.rrt) and its shared machinery."""

import numpy as np
import pytest

from repro.envs.arm_maps import default_arm, map_c, map_f
from repro.harness.profiler import PhaseProfiler
from repro.planning.prm import distant_free_pair
from repro.planning.rrt import RRT, RrtConfig, RrtKernel, make_arm_workload


@pytest.fixture(scope="module")
def free_setup():
    ws = map_f()
    arm = default_arm()
    rng = np.random.default_rng(0)
    start, goal = distant_free_pair(arm, ws, rng)
    return arm, ws, start, goal


def test_validation(free_setup):
    arm, ws, _, _ = free_setup
    with pytest.raises(ValueError):
        RRT(arm, ws, epsilon=0.0)
    with pytest.raises(ValueError):
        RRT(arm, ws, goal_bias=1.5)
    with pytest.raises(ValueError):
        RRT(arm, ws, nn_strategy="quantum")


def test_plan_free_space(free_setup):
    arm, ws, start, goal = free_setup
    planner = RRT(arm, ws, rng=np.random.default_rng(1))
    result = planner.plan(start, goal)
    assert result.found
    assert np.allclose(result.path[0], start)
    assert np.allclose(result.path[-1], goal)
    assert result.cost >= float(np.linalg.norm(goal - start)) - 1e-9


def test_path_steps_bounded_by_epsilon(free_setup):
    arm, ws, start, goal = free_setup
    epsilon = 0.4
    planner = RRT(arm, ws, epsilon=epsilon, goal_threshold=0.8,
                  rng=np.random.default_rng(2))
    result = planner.plan(start, goal)
    assert result.found
    steps = [
        float(np.linalg.norm(b - a))
        for a, b in zip(result.path[:-1], result.path[1:])
    ]
    # All tree extensions obey epsilon; the final goal hop obeys threshold.
    assert all(s <= 0.8 + 1e-9 for s in steps)


def test_path_is_collision_free_on_map_c():
    w = make_arm_workload(5, "map-c", seed=2)
    planner = RRT(w.arm, w.workspace, goal_threshold=0.8,
                  rng=np.random.default_rng(0), max_samples=4000)
    result = planner.plan(w.start, w.goal)
    assert result.found
    for a, b in zip(result.path[:-1], result.path[1:]):
        assert not w.workspace.edge_collides(w.arm, a, b, step=0.05)


def test_linear_and_kdtree_strategies_agree_statistically(free_setup):
    arm, ws, start, goal = free_setup
    for strategy in ("kdtree", "linear"):
        planner = RRT(arm, ws, nn_strategy=strategy,
                      rng=np.random.default_rng(3))
        result = planner.plan(start, goal)
        assert result.found, strategy


def test_sample_budget_respected(free_setup):
    arm, ws, start, goal = free_setup
    planner = RRT(arm, ws, max_samples=5, goal_bias=0.0,
                  rng=np.random.default_rng(4))
    result = planner.plan(start, np.asarray(goal) * 0 + 99.0)  # unreachable
    assert not result.found
    assert result.samples_drawn == 5


def test_profiler_phases(free_setup):
    arm, ws, start, goal = free_setup
    prof = PhaseProfiler()
    planner = RRT(arm, ws, rng=np.random.default_rng(5), profiler=prof)
    planner.plan(start, goal)
    for phase in ("sampling", "nn_search", "collision", "extend"):
        assert phase in prof.stats, phase
    assert prof.counters.get("rrt_samples_drawn", 0) > 0


def test_goal_bias_accelerates_free_space(free_setup):
    arm, ws, start, goal = free_setup
    biased = RRT(arm, ws, goal_bias=0.3, rng=np.random.default_rng(6))
    unbiased = RRT(arm, ws, goal_bias=0.0, rng=np.random.default_rng(6))
    r_biased = biased.plan(start, goal)
    r_unbiased = unbiased.plan(start, goal)
    assert r_biased.found
    if r_unbiased.found:
        assert r_biased.samples_drawn <= r_unbiased.samples_drawn


def test_kernel_end_to_end():
    result = RrtKernel().run(RrtConfig(seed=2))
    assert result.output.found
    fr = result.profiler.fractions()
    assert fr.get("nn_search", 0) + fr.get("collision", 0) > 0.5
