"""Tests for EKF-SLAM (02.ekfslam)."""

import math

import numpy as np
import pytest

from repro.geometry.transforms import SE2
from repro.perception.ekf_slam import (
    EKFSlam,
    EkfSlamConfig,
    EkfSlamKernel,
    make_ekfslam_workload,
)
from repro.sensors.landmarks import LandmarkSensor, RangeBearing


def test_state_dimensions():
    slam = EKFSlam(n_landmarks=4)
    assert slam.dim == 3 + 2 * 4
    assert slam.pose_estimate() == SE2(0, 0, 0)


def test_negative_landmarks_raises():
    with pytest.raises(ValueError):
        EKFSlam(n_landmarks=-1)


def test_predict_straight_motion():
    slam = EKFSlam(n_landmarks=0)
    slam.predict(v=1.0, w=0.0, dt=2.0)
    pose = slam.pose_estimate()
    assert pose.x == pytest.approx(2.0)
    assert pose.y == pytest.approx(0.0)


def test_predict_arc_motion():
    slam = EKFSlam(n_landmarks=0)
    # Quarter circle of radius 1.
    slam.predict(v=1.0, w=1.0, dt=math.pi / 2.0)
    pose = slam.pose_estimate()
    assert pose.x == pytest.approx(1.0, abs=1e-9)
    assert pose.y == pytest.approx(1.0, abs=1e-9)
    assert pose.theta == pytest.approx(math.pi / 2.0)


def test_predict_grows_uncertainty():
    slam = EKFSlam(n_landmarks=0)
    before = np.trace(slam.pose_covariance())
    slam.predict(1.0, 0.1, 0.5)
    after = np.trace(slam.pose_covariance())
    assert after > before


def test_first_observation_initializes_landmark():
    slam = EKFSlam(n_landmarks=1)
    obs = RangeBearing(range=5.0, bearing=0.0, landmark_id=0)
    slam.update([obs])
    assert slam.seen[0]
    estimate = slam.landmark_estimate(0)
    assert estimate[0] == pytest.approx(5.0, abs=0.1)
    assert estimate[1] == pytest.approx(0.0, abs=0.1)


def test_update_out_of_range_landmark_raises():
    slam = EKFSlam(n_landmarks=1)
    with pytest.raises(ValueError):
        slam.update([RangeBearing(1.0, 0.0, landmark_id=7)])


def test_repeated_observation_shrinks_uncertainty():
    slam = EKFSlam(n_landmarks=1)
    obs = RangeBearing(range=5.0, bearing=0.3, landmark_id=0)
    slam.update([obs])
    first = np.trace(slam.landmark_covariance(0))
    for _ in range(10):
        slam.update([obs])
    assert np.trace(slam.landmark_covariance(0)) < first


def test_full_slam_run_converges():
    """The paper's Fig. 3 scenario: errors stay small after a loop."""
    workload = make_ekfslam_workload(n_landmarks=6, n_steps=100, seed=0)
    slam = EKFSlam(n_landmarks=6)
    slam.set_pose(workload.true_poses[0])
    for (v, w), obs in zip(workload.controls, workload.observations):
        slam.predict(v, w, workload.dt)
        slam.update(obs)
    final_error = slam.pose_estimate().distance_to(workload.true_poses[-1])
    assert final_error < 1.0
    for j in range(6):
        assert slam.seen[j]
        err = np.linalg.norm(slam.landmark_estimate(j) - workload.landmarks[j])
        assert err < 1.0


def test_slam_beats_dead_reckoning():
    """Measurement updates must beat pure motion-model prediction."""
    workload = make_ekfslam_workload(n_landmarks=6, n_steps=100, seed=1)
    with_updates = EKFSlam(n_landmarks=6)
    without = EKFSlam(n_landmarks=6)
    for slam in (with_updates, without):
        slam.set_pose(workload.true_poses[0])
    # Perturb both with the same control miscalibration.  Stop halfway
    # around the loop: over a *closed* loop the calibration error cancels
    # out for dead reckoning, hiding the comparison.
    half = len(workload.controls) // 2
    for (v, w), obs in zip(
        workload.controls[:half], workload.observations[:half]
    ):
        noisy_v = v * 1.05  # simulated control miscalibration
        with_updates.predict(noisy_v, w, workload.dt)
        with_updates.update(obs)
        without.predict(noisy_v, w, workload.dt)
    true_mid = workload.true_poses[half]
    assert (
        with_updates.pose_estimate().distance_to(true_mid)
        < without.pose_estimate().distance_to(true_mid)
    )


def test_workload_observations_within_range():
    workload = make_ekfslam_workload(n_landmarks=5, n_steps=30, seed=2)
    for obs_list in workload.observations:
        for obs in obs_list:
            assert obs.range <= workload.sensor.max_range + 1.0


def test_kernel_matrix_ops_dominate():
    result = EkfSlamKernel().run(EkfSlamConfig(steps=40))
    assert result.profiler.fraction("matrix_ops") > 0.7
    assert result.output["final_pose_error"] < 1.0
