"""Tests for the delete-relaxation heuristics (h_max / h_add)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.planning.symbolic.domains import blocks_world, firefighter
from repro.planning.symbolic.heuristics import make_heuristic, relaxed_cost
from repro.planning.symbolic.planner import SymbolicPlanner, execute_plan


def test_zero_at_goal():
    problem = blocks_world(3)
    goal_state = execute_plan(
        problem, SymbolicPlanner(problem).plan().plan
    )
    for mode in ("max", "add"):
        assert relaxed_cost(goal_state, problem.goal, problem.actions,
                            mode=mode) == 0.0


def test_hmax_leq_hadd():
    problem = firefighter()
    h_max = relaxed_cost(problem.initial_state, problem.goal,
                         problem.actions, mode="max")
    h_add = relaxed_cost(problem.initial_state, problem.goal,
                         problem.actions, mode="add")
    assert 0.0 < h_max <= h_add


def test_hmax_is_admissible_on_suite_domains():
    """h_max never exceeds the true optimal plan cost."""
    for problem in (blocks_world(4), blocks_world(5), firefighter()):
        optimal = SymbolicPlanner(problem).plan()
        assert optimal.found
        h = relaxed_cost(problem.initial_state, problem.goal,
                         problem.actions, mode="max")
        assert h <= optimal.cost + 1e-9


def test_unreachable_goal_is_infinite():
    problem = blocks_world(3)
    h = relaxed_cost(problem.initial_state, frozenset({"On(A,Mars)"}),
                     problem.actions, mode="max")
    assert h == float("inf")


def test_invalid_mode_raises():
    problem = blocks_world(3)
    with pytest.raises(ValueError):
        relaxed_cost(problem.initial_state, problem.goal, problem.actions,
                     mode="weird")
    with pytest.raises(ValueError, match="unknown heuristic"):
        make_heuristic(problem.goal, problem.actions, "psychic")


@pytest.mark.parametrize("kind", ["goal-count", "hmax", "hadd"])
def test_planner_with_each_heuristic_finds_valid_plans(kind):
    for make in (lambda: blocks_world(5), firefighter):
        problem = make()
        result = SymbolicPlanner(problem, heuristic=kind).plan()
        assert result.found, kind
        final = execute_plan(problem, result.plan)
        assert problem.goal <= final


def test_hadd_expands_fewer_nodes_on_firefighter():
    baseline = SymbolicPlanner(firefighter(), heuristic="goal-count").plan()
    informed = SymbolicPlanner(firefighter(), heuristic="hadd").plan()
    assert informed.expansions < baseline.expansions


def test_hmax_plans_stay_optimal_length():
    """Admissible h_max + A* yields the same optimal plan lengths."""
    for n in (3, 4, 5):
        problem = blocks_world(n)
        gc = SymbolicPlanner(problem, heuristic="goal-count").plan()
        hm = SymbolicPlanner(blocks_world(n), heuristic="hmax").plan()
        assert len(hm.plan) == len(gc.plan) == n


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 5), st.sampled_from(["reverse", "spread"]))
def test_random_blocks_instances_solved_consistently(n_blocks, goal):
    """Property: all heuristics solve every blocks instance, and the
    admissible ones agree on plan length."""
    lengths = {}
    for kind in ("goal-count", "hmax"):
        problem = blocks_world(n_blocks, goal=goal)
        result = SymbolicPlanner(problem, heuristic=kind).plan()
        assert result.found
        assert problem.goal <= execute_plan(problem, result.plan)
        lengths[kind] = len(result.plan)
    assert lengths["goal-count"] == lengths["hmax"]
