"""Tests for the kernel runner and registry."""

from dataclasses import dataclass

import pytest

from repro.harness.config import KernelConfig, option
from repro.harness.profiler import PhaseProfiler
from repro.harness.runner import (
    Kernel,
    KernelRegistry,
    StepSession,
    load_all_kernels,
    registry,
    run_kernel,
)


@dataclass
class _ToyConfig(KernelConfig):
    value: int = option(3, "A number")


class _ToyKernel(Kernel):
    name = "99.toy"
    stage = "testing"
    config_cls = _ToyConfig

    def setup(self, config):
        return {"prepared": config.value}

    def run_roi(self, config, state, profiler):
        with profiler.phase("compute"):
            return state["prepared"] * 2


def test_kernel_run_produces_result():
    result = _ToyKernel().run(_ToyConfig(value=5))
    assert result.output == 10
    assert result.kernel == "99.toy"
    assert result.roi_time >= 0.0
    assert "compute" in result.profiler.stats


def test_kernel_run_with_default_config():
    result = _ToyKernel().run()
    assert result.output == 6


def test_kernel_run_records_setup_time():
    result = _ToyKernel().run()
    assert result.setup_time >= 0.0
    assert "roi_min_s" not in result.metrics  # single run: no series


def test_kernel_run_repeats_record_series():
    result = _ToyKernel().run(_ToyConfig(value=5, repeats=3, warmup=1))
    assert result.output == 10  # final repeat's output, deterministic
    assert result.metrics["roi_repeats"] == 3.0
    assert result.metrics["roi_min_s"] <= result.metrics["roi_median_s"]
    assert result.metrics["roi_min_s"] <= result.roi_time


def test_run_roi_must_be_overridden():
    class Bare(Kernel):
        pass

    with pytest.raises(NotImplementedError):
        Bare().run()


def test_registry_register_and_get():
    reg = KernelRegistry()
    reg.register(_ToyKernel)
    assert reg.get("99.toy") is _ToyKernel
    assert reg.get("toy") is _ToyKernel  # suffix lookup


def test_registry_duplicate_raises():
    reg = KernelRegistry()
    reg.register(_ToyKernel)
    with pytest.raises(ValueError, match="duplicate"):
        reg.register(_ToyKernel)


def test_registry_unknown_raises():
    reg = KernelRegistry()
    with pytest.raises(KeyError):
        reg.get("nope")


def test_registry_unknown_suggests_close_matches():
    load_all_kernels()
    with pytest.raises(KeyError, match="did you mean") as exc:
        registry.get("rrtt")
    assert "rrt" in str(exc.value)
    with pytest.raises(KeyError, match="did you mean") as exc:
        registry.get("pfll")
    assert "pfl" in str(exc.value)


def test_registry_unknown_without_close_match_has_no_hint():
    load_all_kernels()
    with pytest.raises(KeyError) as exc:
        registry.get("zzzzzzz")
    assert "did you mean" not in str(exc.value)


def test_registry_ambiguous_suffix_lists_candidates():
    @dataclass
    class _OtherToyConfig(KernelConfig):
        value: int = option(1, "A number")

    class _OtherToy(Kernel):
        name = "98.toy"
        stage = "testing"
        config_cls = _OtherToyConfig

        def run_roi(self, config, state, profiler):
            return None

    reg = KernelRegistry()
    reg.register(_ToyKernel)
    reg.register(_OtherToy)
    with pytest.raises(KeyError, match="ambiguous") as exc:
        reg.get("toy")
    assert "98.toy" in str(exc.value)
    assert "99.toy" in str(exc.value)


def test_full_suite_registration():
    """All sixteen paper kernels register under their Table I names."""
    load_all_kernels()
    names = registry.names()
    expected = [
        "01.pfl", "02.ekfslam", "03.srec", "04.pp2d", "05.pp3d",
        "06.movtar", "07.prm", "08.rrt", "09.rrtstar", "10.rrtpp",
        "11.sym-blkw", "12.sym-fext", "13.dmp", "14.mpc", "15.cem", "16.bo",
    ]
    for name in expected:
        assert name in names


def test_stages_partition_the_suite():
    load_all_kernels()
    perception = registry.by_stage("perception")
    planning = registry.by_stage("planning")
    control = registry.by_stage("control")
    assert len(perception) == 3
    assert len(planning) == 10  # the paper's 9 + the rrtconnect extension
    assert len(control) == 4


def test_run_kernel_with_overrides():
    result = run_kernel("cem", iterations=2, samples=4, seed=1)
    assert result.config.iterations == 2
    assert result.output["best_reward"] <= 0.0


def test_run_kernel_override_on_config():
    load_all_kernels()
    cls = registry.get("cem")
    config = cls.config_cls(iterations=1, samples=3)
    result = run_kernel("cem", config=config, seed=2)
    assert result.config.seed == 2
    assert result.config.iterations == 1


# -- steppable protocol --------------------------------------------------------


@dataclass
class _SteppableConfig(KernelConfig):
    steps: int = option(4, "Iterations per episode")


class _SteppableKernel(Kernel):
    name = "97.steppable-toy"
    stage = "testing"
    config_cls = _SteppableConfig

    def setup(self, config):
        return list(range(config.steps))

    def begin_roi(self, config, state, profiler):
        return {"acc": 0}

    def num_steps(self, config, state):
        return len(state)

    def step(self, index, session, profiler):
        with profiler.phase("compute"):
            session.payload["acc"] += session.state[index]
            profiler.count("steps", 1)

    def finalize(self, session):
        return {"total": session.payload["acc"]}


def test_is_steppable_flag():
    assert _SteppableKernel.is_steppable()
    assert not _ToyKernel.is_steppable()  # batch kernel: no step override


def test_batch_kernel_acts_as_single_step_session():
    """A batch kernel is a degenerate steppable kernel with one step."""
    kernel = _ToyKernel()
    session = kernel.open_session(_ToyConfig(value=4))
    assert session.total_steps == 1
    assert not session.exhausted
    session.step()
    assert session.exhausted
    assert session.finish() == 8


def test_steppable_kernel_inherited_run_roi_drives_all_steps():
    kernel = _SteppableKernel()
    config = _SteppableConfig(steps=5)
    profiler = PhaseProfiler()
    output = kernel.run_roi(config, kernel.setup(config), profiler)
    assert output == {"total": 0 + 1 + 2 + 3 + 4}
    assert profiler.counters["steps"] == 5


def test_open_session_defaults_and_manual_stepping():
    session = _SteppableKernel().open_session()
    assert isinstance(session, StepSession)
    assert session.total_steps == 4
    indices = []
    while not session.exhausted:
        indices.append(session.step())
    assert indices == [0, 1, 2, 3]
    assert session.finish() == {"total": 6}


def test_session_refuses_steps_past_exhaustion_or_finalize():
    session = _SteppableKernel().open_session(_SteppableConfig(steps=1))
    session.step()
    with pytest.raises(RuntimeError, match="beyond the episode"):
        session.step()
    first = session.finish()
    assert session.finish() is first  # idempotent
    with pytest.raises(RuntimeError, match="finalized"):
        session.step()


def test_steppable_kernel_runs_through_standard_runner():
    result = _SteppableKernel().run(_SteppableConfig(steps=3))
    assert result.output == {"total": 3}
    assert result.profiler.counters["steps"] == 3


def test_repeats_report_mean_alongside_median():
    result = _ToyKernel().run(_ToyConfig(value=2, repeats=3, warmup=0))
    assert result.metrics["roi_mean_s"] > 0.0
    assert result.metrics["roi_min_s"] <= result.metrics["roi_mean_s"]
    assert result.metrics["roi_repeats"] == 3.0
