"""Tests for the end-to-end suite executor (``rtrbench suite``)."""

from __future__ import annotations

import pytest

from repro.harness.suite import (
    RT_SUITE_KERNELS_SMOKE,
    SMOKE_KERNELS,
    filter_tasks,
    run_suite,
    suite_tasks,
)
from repro.results import evaluate_gates, record_from_suite

#: Tiny kernel subset that keeps suite-level tests fast.
FAST_KERNELS = ("11.sym-blkw", "13.dmp", "15.cem")


def _gate_by_name(record):
    return {r.gate: r for r in evaluate_gates(record)}


def test_suite_tasks_cover_all_sections():
    tasks = suite_tasks(smoke=True)
    sections = {t["section"] for t in tasks}
    assert sections == {"characterize", "bench", "fig21", "rt"}
    names = [t["name"] for t in tasks]
    assert len(names) == len(set(names))
    for kernel in SMOKE_KERNELS:
        assert f"characterize:{kernel}" in names
    for kernel, granularity in RT_SUITE_KERNELS_SMOKE:
        suffix = ":step" if granularity == "step" else ""
        assert f"rt:{kernel}{suffix}" in names


def test_filter_tasks_by_full_name_glob():
    tasks = suite_tasks(smoke=True)
    selected = filter_tasks(tasks, "rt:*")
    assert selected
    assert all(t["section"] == "rt" for t in selected)


def test_filter_tasks_matches_suffix_after_colon():
    tasks = suite_tasks(smoke=True)
    selected = filter_tasks(tasks, "15.cem")
    names = {t["name"] for t in selected}
    assert names == {"characterize:15.cem", "rt:15.cem"}


def test_filter_tasks_none_keeps_everything():
    tasks = suite_tasks(smoke=True)
    assert filter_tasks(tasks, None) == list(tasks)


def test_filter_tasks_no_match_raises_with_name_list():
    tasks = suite_tasks(smoke=True)
    with pytest.raises(ValueError, match="matches no suite tasks"):
        filter_tasks(tasks, "nonexistent-*")
    try:
        filter_tasks(tasks, "zzz")
    except ValueError as exc:
        assert "characterize:" in str(exc)  # lists the available names


def test_suite_tasks_seeds_are_content_derived():
    first = suite_tasks(smoke=True, seed=7)
    again = suite_tasks(smoke=True, seed=7)
    other = suite_tasks(smoke=True, seed=8)
    bench = [t for t in first if t["section"] == "bench"]
    assert [t["seed"] for t in bench] == [
        t["seed"] for t in again if t["section"] == "bench"
    ]
    assert [t["seed"] for t in bench] != [
        t["seed"] for t in other if t["section"] == "bench"
    ]


@pytest.fixture(scope="module")
def smoke_report():
    """One parallel smoke run with the opt-in inline serial baseline."""
    return run_suite(jobs=4, smoke=True, kernels=FAST_KERNELS, baseline=True)


def test_report_schema(smoke_report):
    suite = smoke_report["suite"]
    assert suite["jobs"] == 4
    assert suite["task_count"] == len(smoke_report["tasks"])
    assert suite["failures"] == 0
    assert suite["wall_s"] > 0.0
    assert suite["serial_wall_s"] > 0.0
    assert suite["parallel_speedup"] == pytest.approx(
        suite["serial_wall_s"] / suite["wall_s"]
    )
    assert suite["baseline_source"] == "inline"
    assert suite["dispatch_overhead_s"] >= 0.0
    assert 0.0 <= suite["dispatch_overhead_share"] < 1.0
    assert 0.0 < suite["worker_utilization"] <= 1.0
    executor = suite["executor"]
    assert executor["workers"] >= 2
    assert executor["scheduling"] in ("longest-first", "input-order")
    for row in smoke_report["tasks"]:
        assert row["ok"], row
        assert row["wall_s"] > 0.0
        assert row["roi_s"] >= 0.0
        assert row["setup_s"] >= 0.0
        assert row["exec_s"] > 0.0
        assert row["queue_wait_s"] >= 0.0
        assert "cache" in row


def test_parallel_matches_serial(smoke_report):
    """The acceptance guarantee: -j N and -j 1 produce identical outputs.

    Fingerprints digest each task's operation counters / deterministic
    work counts — the timing-free portion of its result — and the report
    cross-checks them between the parallel and serial passes.
    """
    determinism = smoke_report["determinism"]
    assert determinism["checked"]
    assert determinism["matches"], determinism["mismatches"]


def test_cache_probe_beats_cold_build(smoke_report):
    probe = smoke_report["cache"]["probe"]
    assert probe["cold_build_s"] > 0.0
    assert probe["warm_hit_s"] > 0.0
    # The full-size floor is 5x; even the smoke map clears 2x with
    # headroom on a loaded machine.
    assert probe["hit_speedup"] > 2.0


def test_record_from_suite_mints_structural_measurements(smoke_report):
    record = record_from_suite(smoke_report)
    assert record.kind == "suite"
    assert record.has_tag("smoke")
    assert record.metric("suite.failures") == 0.0
    assert record.metric("determinism.match") == 1.0
    assert record.metric("cache.hit_speedup") > 2.0
    assert record.metric("suite.parallel_speedup") > 0.0
    task_metrics = [
        name for name in record.metric_names() if name.startswith("tasks.")
    ]
    assert task_metrics


def test_structural_gates_active_even_on_smoke(smoke_report):
    # Failed-task and determinism gates are machine-independent, so they
    # keep judging smoke records (stricter than the retired checker,
    # which skipped everything on smoke).
    by_name = _gate_by_name(record_from_suite(smoke_report))
    assert by_name["suite.no-failed-tasks"].passed
    assert by_name["suite.determinism"].passed
    assert by_name["suite.parallel-speedup-floor"].status == "skip"
    assert by_name["suite.cache-hit-speedup-floor"].status == "skip"


def test_failing_kernel_becomes_failure_row_not_dead_suite():
    report = run_suite(
        jobs=2,
        smoke=True,
        kernels=["15.cem", "no-such-kernel"],
    )
    by_task = {row["task"]: row for row in report["tasks"]}
    bad = by_task["characterize:no-such-kernel"]
    assert not bad["ok"]
    assert "no-such-kernel" in bad["error"]
    good = by_task["characterize:15.cem"]
    assert good["ok"]
    assert report["suite"]["failures"] == 1
    by_name = _gate_by_name(record_from_suite(report))
    assert by_name["suite.no-failed-tasks"].failed


def _synthetic_report(
    parallel_speedup, hit_speedup, matches=True, failures=0,
    worker_utilization=0.8, dispatch_overhead_share=0.02,
):
    return {
        "suite": {
            "jobs": 4,
            "seed": 7,
            "smoke": False,
            "task_count": 2,
            "failures": failures,
            "wall_s": 1.0,
            "serial_wall_s": parallel_speedup,
            "parallel_speedup": parallel_speedup,
            "worker_utilization": worker_utilization,
            "dispatch_overhead_s": dispatch_overhead_share,
            "dispatch_overhead_share": dispatch_overhead_share,
        },
        "cache": {"probe": {"hit_speedup": hit_speedup,
                            "cold_build_s": 1.0, "warm_hit_s": 0.1}},
        "determinism": {"checked": True, "matches": matches,
                        "mismatches": [] if matches else ["bench:raycast"]},
        "tasks": [
            {"task": "fine", "ok": True, "wall_s": 0.5, "roi_s": 0.4},
            {"task": "slow", "ok": failures == 0, "wall_s": 0.5,
             "roi_s": 0.4},
        ],
    }


def test_suite_gates_pass_good_report():
    record = record_from_suite(_synthetic_report(3.0, 6.0))
    outcomes = evaluate_gates(record)
    assert outcomes and all(r.passed for r in outcomes)


def test_suite_gates_flag_regressions():
    record = record_from_suite(
        _synthetic_report(
            1.0, 1.0, matches=False, failures=1,
            worker_utilization=0.1, dispatch_overhead_share=0.5,
        )
    )
    by_name = _gate_by_name(record)
    assert by_name["suite.no-failed-tasks"].failed
    assert by_name["suite.determinism"].failed
    assert by_name["suite.parallel-speedup-floor"].failed
    assert by_name["suite.cache-hit-speedup-floor"].failed
    assert by_name["suite.worker-utilization-floor"].failed
    assert by_name["suite.dispatch-overhead-ceiling"].failed


def test_single_core_tag_sidelines_parallel_timing_gates():
    """One usable CPU cannot express parallelism; the floors step aside."""
    from repro.results.record import EnvironmentFingerprint

    env = EnvironmentFingerprint(python="3.11", cpu_count=1)
    record = record_from_suite(_synthetic_report(0.8, 6.0), env=env)
    assert record.has_tag("single-core")
    by_name = _gate_by_name(record)
    assert by_name["suite.parallel-speedup-floor"].status == "skip"
    assert by_name["suite.worker-utilization-floor"].status == "skip"
    # Structural gates keep judging: they are machine-independent.
    assert by_name["suite.no-failed-tasks"].passed
    assert by_name["suite.determinism"].passed


def test_serial_only_report_skips_speedup_gate():
    report = run_suite(jobs=1, smoke=True, kernels=FAST_KERNELS)
    assert report["suite"]["serial_wall_s"] is None
    assert "nothing to compare" in report["suite"]["parallel_speedup_reason"]
    assert not report["determinism"]["checked"]
    record = record_from_suite(report)
    # No parallel pass -> no speedup/determinism measurements -> the
    # corresponding gates step aside instead of failing.
    assert record.metric("suite.parallel_speedup") is None
    assert record.metric("determinism.match") is None
    by_name = _gate_by_name(record)
    assert by_name["suite.parallel-speedup-floor"].status == "skip"
    assert by_name["suite.determinism"].status == "skip"


def test_speedup_derived_from_stored_serial_baseline(tmp_path):
    """Without --baseline the comparison comes from the result store."""
    from repro.results import ResultStore

    results_dir = str(tmp_path / "results")
    store = ResultStore(results_dir)
    kernels = ["13.dmp", "15.cem"]

    # No stored baseline yet: speedup is null, with a reason.
    first = run_suite(
        jobs=2, smoke=True, kernels=kernels, results_dir=results_dir
    )
    assert first["suite"]["parallel_speedup"] is None
    assert "no comparable serial baseline" in (
        first["suite"]["parallel_speedup_reason"]
    )
    assert not first["determinism"]["checked"]

    # Store a serial run; the next parallel run derives its baseline
    # from it and cross-checks fingerprints against its rows.
    serial = run_suite(
        jobs=1, smoke=True, kernels=kernels, results_dir=results_dir
    )
    store.save(record_from_suite(serial))
    derived = run_suite(
        jobs=2, smoke=True, kernels=kernels, results_dir=results_dir
    )
    suite = derived["suite"]
    assert suite["serial_wall_s"] == pytest.approx(
        serial["suite"]["wall_s"]
    )
    assert suite["parallel_speedup"] == pytest.approx(
        suite["serial_wall_s"] / suite["wall_s"]
    )
    assert suite["baseline_source"].startswith("record:")
    assert derived["determinism"]["checked"]
    assert derived["determinism"]["matches"], (
        derived["determinism"]["mismatches"]
    )
    # The stored record also supplies per-task durations, so dispatch
    # goes longest-first instead of input order.
    assert suite["executor"]["scheduling"] == "longest-first"


def test_stored_baseline_requires_matching_run_shape(tmp_path):
    """A stored record with a different task list is not comparable."""
    from repro.results import ResultStore

    results_dir = str(tmp_path / "results")
    store = ResultStore(results_dir)
    serial = run_suite(
        jobs=1, smoke=True, kernels=["13.dmp"], results_dir=results_dir
    )
    store.save(record_from_suite(serial))
    other = run_suite(
        jobs=2, smoke=True, kernels=["15.cem"], results_dir=results_dir
    )
    assert other["suite"]["parallel_speedup"] is None
    assert "no comparable serial baseline" in (
        other["suite"]["parallel_speedup_reason"]
    )


def test_suite_registered_as_experiment():
    from repro.experiments import EXPERIMENTS

    assert "SUITE" in EXPERIMENTS
