"""Tests for the rtrbench command-line interface (paper Fig. 20)."""

import pytest

from repro.harness.cli import main


def test_list_command_prints_all_kernels(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("01.pfl", "08.rrt", "16.bo"):
        assert name in out


def test_run_without_kernel_errors(capsys):
    assert main(["run"]) == 2
    assert "usage" in capsys.readouterr().err


def test_run_unknown_kernel_errors(capsys):
    assert main(["run", "doesnotexist"]) == 2
    assert "error" in capsys.readouterr().err


def test_unknown_command_errors(capsys):
    assert main(["frobnicate"]) == 2


def test_no_args_prints_usage(capsys):
    assert main([]) == 0
    assert "rtrbench" in capsys.readouterr().out


def test_run_kernel_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["run", "rrt", "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    # The Fig. 20 options surface through the real CLI.
    assert "--epsilon" in out
    assert "--samples" in out
    assert "--bias" in out


def test_run_small_kernel_end_to_end(capsys):
    assert main(["run", "cem", "--iterations", "1", "--samples", "3"]) == 0
    out = capsys.readouterr().out
    assert "15.cem" in out
    assert "ROI time" in out


def test_run_writes_output_file(tmp_path, capsys):
    target = tmp_path / "result.txt"
    code = main(
        ["run", "cem", "--iterations", "1", "--samples", "3",
         "--output", str(target)]
    )
    assert code == 0
    assert target.exists()
    assert "15.cem" in target.read_text()
