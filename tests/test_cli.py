"""Tests for the rtrbench command-line interface (paper Fig. 20)."""

import json
import os
from dataclasses import dataclass

import pytest

from repro.harness.cli import main
from repro.harness.config import KernelConfig, option
from repro.harness.runner import Kernel, registry


@dataclass
class _FlagConfig(KernelConfig):
    iterations: int = option(1, "How many times")
    fancy: bool = option(False, "Enable fancy mode")


class _FlagKernel(Kernel):
    """Toy kernel with a boolean option, for --inputset expansion tests."""

    name = "98.flagtest"
    stage = "testing"
    config_cls = _FlagConfig

    def run_roi(self, config, state, profiler):
        with profiler.phase("noop"):
            return {"fancy": config.fancy, "iterations": config.iterations}


@pytest.fixture
def flag_kernel():
    """Register the toy kernel for one test, leaving the registry clean."""
    try:
        registry.register(_FlagKernel)
    except ValueError:
        pass
    yield
    registry.unregister(_FlagKernel.name)


def test_list_command_prints_all_kernels(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("01.pfl", "08.rrt", "16.bo"):
        assert name in out


def test_list_marks_steppable_kernels(capsys):
    assert main(["list"]) == 0
    lines = capsys.readouterr().out.splitlines()
    by_name = {line.split()[0]: line for line in lines if line.strip()}
    assert "steppable" in by_name["01.pfl"]
    assert "batch" in by_name["16.bo"]


def test_list_json_is_machine_readable(capsys):
    assert main(["list", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    by_name = {row["name"]: row for row in rows}
    assert len(by_name) >= 16
    assert by_name["01.pfl"]["stage"] == "perception"
    assert by_name["01.pfl"]["steppable"] is True
    assert by_name["16.bo"]["steppable"] is False
    assert by_name["14.mpc"]["description"]


def test_run_without_kernel_errors(capsys):
    assert main(["run"]) == 2
    assert "usage" in capsys.readouterr().err


def test_run_unknown_kernel_errors(capsys):
    assert main(["run", "doesnotexist"]) == 2
    assert "error" in capsys.readouterr().err


def test_unknown_command_errors(capsys):
    assert main(["frobnicate"]) == 2


def test_no_args_prints_usage(capsys):
    assert main([]) == 0
    assert "rtrbench" in capsys.readouterr().out


def test_run_kernel_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["run", "rrt", "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    # The Fig. 20 options surface through the real CLI.
    assert "--epsilon" in out
    assert "--samples" in out
    assert "--bias" in out


def test_run_small_kernel_end_to_end(capsys):
    assert main(["run", "cem", "--iterations", "1", "--samples", "3"]) == 0
    out = capsys.readouterr().out
    assert "15.cem" in out
    assert "ROI time" in out


def test_run_writes_output_file(tmp_path, capsys):
    target = tmp_path / "result.txt"
    code = main(
        ["run", "cem", "--iterations", "1", "--samples", "3",
         "--output", str(target)]
    )
    assert code == 0
    assert target.exists()
    assert "15.cem" in target.read_text()


def test_run_repeats_records_roi_series(capsys):
    code = main(
        ["run", "cem", "--iterations", "1", "--samples", "3",
         "--repeats", "3", "--warmup", "1"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "roi_min_s" in out
    assert "roi_median_s" in out


def test_inputsets_lists_kernel(capsys):
    assert main(["inputsets", "pp2d"]) == 0
    out = capsys.readouterr().out
    assert "dense-city" in out


def test_inputsets_unknown_kernel_errors(capsys):
    assert main(["inputsets", "doesnotexist"]) == 2
    assert "error" in capsys.readouterr().err


def test_run_with_inputset_applies_overrides(capsys):
    assert main(
        ["run", "cem", "--inputset", "far-goal", "--iterations", "1",
         "--samples", "3"]
    ) == 0
    assert "15.cem" in capsys.readouterr().out


def test_run_with_unknown_inputset_errors(capsys):
    assert main(["run", "cem", "--inputset", "nope"]) == 2
    assert "error" in capsys.readouterr().err


def test_run_inputset_missing_name_errors(capsys):
    assert main(["run", "cem", "--inputset"]) == 2
    assert "requires a name" in capsys.readouterr().err


def test_inputset_boolean_override_expands_to_flag(
    capsys, monkeypatch, flag_kernel
):
    """A True boolean override becomes a bare flag, not a positional."""
    from repro.envs import inputsets

    monkeypatch.setitem(
        inputsets.INPUTSETS,
        "flagtest",
        {"fancy-on": {"fancy": True, "iterations": 2},
         "fancy-default": {"fancy": False, "iterations": 3}},
    )
    assert main(["run", "flagtest", "--inputset", "fancy-on"]) == 0
    out = capsys.readouterr().out
    assert "98.flagtest" in out
    # A False override matching the default must be omitted entirely.
    assert main(["run", "flagtest", "--inputset", "fancy-default"]) == 0


def test_characterize_subset(capsys):
    assert main(["characterize", "cem"]) == 0
    out = capsys.readouterr().out
    assert "15.cem" in out
    assert "matches" in out


def test_characterize_unknown_kernel_errors(capsys):
    assert main(["characterize", "doesnotexist"]) == 2
    assert "error" in capsys.readouterr().err


def test_suite_smoke_writes_report(tmp_path, capsys):
    target = tmp_path / "BENCH_suite.json"
    code = main(
        ["suite", "--smoke", "-j", "2", "--output", str(target)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "suite:" in out
    assert "executor:" in out
    assert "record stored at" in out
    document = json.loads(target.read_text())
    assert document["kind"] == "suite"
    assert document["schema_version"] >= 2
    assert "smoke" in document["tags"]
    assert document["measurements"]["suite.failures"]["value"] == 0.0
    # The nested legacy report survives as the record's detail payload.
    report = document["detail"]
    assert set(report) == {"suite", "cache", "determinism", "tasks"}
    assert report["suite"]["jobs"] == 2
    assert report["suite"]["failures"] == 0
    assert any(
        row["task"].startswith("characterize:") for row in report["tasks"]
    )
    assert any(
        row["task"].startswith("rt:") for row in report["tasks"]
    )


def test_suite_filter_selects_task_subset(tmp_path, capsys):
    target = tmp_path / "BENCH_suite.json"
    code = main(
        ["suite", "--smoke", "--filter", "characterize:15.cem",
         "--output", str(target)]
    )
    assert code == 0
    report = json.loads(target.read_text())["detail"]
    assert report["suite"]["filter"] == "characterize:15.cem"
    assert [row["task"] for row in report["tasks"]] == [
        "characterize:15.cem"
    ]


def test_suite_filter_with_no_match_errors(capsys):
    code = main(["suite", "--smoke", "--filter", "no-such-task-*"])
    assert code == 2
    err = capsys.readouterr().err
    assert "matches no suite tasks" in err


@pytest.fixture
def isolated_cache(tmp_path):
    """Point the process-wide workload cache at a private temp directory."""
    from repro.envs.cache import WorkloadCache, set_default_cache

    cache = WorkloadCache(cache_dir=str(tmp_path / "cache"))
    set_default_cache(cache)
    yield cache
    set_default_cache(None)


def test_cache_stats_reports_dir_and_usage(isolated_cache, capsys):
    isolated_cache.get_or_build("toy", {"n": 1}, lambda: list(range(100)))
    assert main(["cache"]) == 0
    out = capsys.readouterr().out
    assert f"cache dir: {isolated_cache.cache_dir}" in out
    assert "entries: 1" in out
    assert "misses" in out


def test_cache_clear_empties_disk_layer(isolated_cache, capsys):
    isolated_cache.get_or_build("toy", {"n": 1}, lambda: "payload")
    isolated_cache.get_or_build("toy", {"n": 2}, lambda: "payload")
    assert isolated_cache.disk_stats()["entries"] == 2
    assert main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert "cleared 2 entries" in out
    assert isolated_cache.disk_stats()["entries"] == 0


def test_cache_stats_json_is_machine_readable(isolated_cache, capsys):
    isolated_cache.get_or_build("toy", {"n": 1}, lambda: list(range(100)))
    isolated_cache.get_or_build("toy", {"n": 1}, lambda: list(range(100)))
    assert main(["cache", "stats", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache_dir"] == isolated_cache.cache_dir
    assert payload["entries"] == 1
    assert payload["process"]["misses"] == 1
    assert payload["process"]["memory_hits"] == 1
    assert payload["process"]["per_category"] == {"toy": 2}


def test_cache_stats_lists_per_category_lookups(isolated_cache, capsys):
    from repro.geometry.grid2d import OccupancyGrid2D

    grid = OccupancyGrid2D.empty(12, 12)
    grid.fill_rect(4, 4, 6, 6)
    grid.inflate(1.0)  # miss
    grid.inflate(1.0)  # memoized hit
    isolated_cache.get_or_build("toy", {"n": 1}, lambda: "x")
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "inflate2d: 2 lookups" in out
    assert "toy: 1 lookups" in out


def test_cache_clear_memory_only_keeps_disk(isolated_cache, capsys):
    isolated_cache.get_or_build("toy", {"n": 1}, lambda: "payload")
    assert main(["cache", "clear", "--memory-only"]) == 0
    out = capsys.readouterr().out
    assert "cleared 0 entries" in out
    assert isolated_cache.disk_stats()["entries"] == 1
    # The kept disk entry still serves hits after the memory drop.
    hit = isolated_cache.get_or_build(
        "toy", {"n": 1}, lambda: pytest.fail("should have hit disk")
    )
    assert hit == "payload"


# -- report / compare / gate ---------------------------------------------------

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


@pytest.fixture
def seeded_store(tmp_path):
    """A private result store holding one bench record."""
    from repro.results import ResultStore, record_from_bench

    store = ResultStore(str(tmp_path / "results"))
    record = record_from_bench(
        {
            phase: {"reference_s": speedup, "vectorized_s": 1.0,
                    "speedup": speedup, "ops": 10}
            for phase, speedup in
            (("raycast", 6.0), ("collision", 4.0), ("nn", 3.0))
        },
        smoke=False, seed=7, jobs=1,
    )
    store.save(record)
    return store


def test_report_lists_stored_history(seeded_store, capsys):
    assert main(["report", "--results-dir", seeded_store.root]) == 0
    out = capsys.readouterr().out
    assert "bench" in out
    assert "1 record(s)" in out


def test_report_renders_one_record(seeded_store, capsys):
    code = main(
        ["report", "bench@latest", "--results-dir", seeded_store.root]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "raycast.speedup" in out
    assert "schema" in out


def test_report_json_roundtrips_record(seeded_store, capsys):
    code = main(
        ["report", "bench", "--json", "--results-dir", seeded_store.root]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["kind"] == "bench"
    assert document["measurements"]["raycast.speedup"]["value"] == 6.0


def test_report_unknown_ref_errors(seeded_store, capsys):
    code = main(
        ["report", "suite@latest", "--results-dir", seeded_store.root]
    )
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_compare_legacy_fixture_against_itself(capsys):
    fixture = f"{FIXTURES}/legacy_BENCH_hotpaths.json"
    assert main(["compare", fixture, fixture]) == 0
    out = capsys.readouterr().out
    assert "raycast.speedup" in out


def test_compare_fail_on_regression_exits_nonzero(tmp_path, capsys):
    fixture = f"{FIXTURES}/legacy_BENCH_hotpaths.json"
    slower = tmp_path / "slower.json"
    with open(fixture) as fh:
        payload = json.load(fh)
    payload["raycast"]["speedup"] = payload["raycast"]["speedup"] / 10.0
    slower.write_text(json.dumps(payload))
    code = main(
        ["compare", fixture, str(slower), "--fail-on-regression"]
    )
    assert code == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_gate_cli_passes_stored_record(seeded_store, capsys):
    code = main(["gate", "--strict", "--results-dir", seeded_store.root])
    assert code == 0
    out = capsys.readouterr().out
    assert "bench.raycast-speedup-floor" in out
    assert "PASS" in out


def test_gate_cli_strict_fails_on_empty_store(tmp_path, capsys):
    empty = str(tmp_path / "empty")
    assert main(["gate", "--results-dir", empty]) == 0
    assert main(["gate", "--strict", "--results-dir", empty]) == 1
    assert "no records to gate" in capsys.readouterr().err


def test_gate_cli_judges_legacy_fixture_files(tmp_path, capsys):
    results_dir = str(tmp_path / "results")
    # The committed pre-migration bench report clears its floors ...
    code = main(
        ["gate", f"{FIXTURES}/legacy_BENCH_hotpaths.json",
         "--results-dir", results_dir]
    )
    assert code == 0
    # ... while the suite report's 1-core parallel speedup fails its
    # floor, exactly as the retired checker ruled on the same file.
    code = main(
        ["gate", f"{FIXTURES}/legacy_BENCH_suite.json",
         "--results-dir", results_dir]
    )
    assert code == 1
    err = capsys.readouterr().out
    assert "suite.parallel-speedup-floor" in err
