"""Tests for the expected-improvement acquisition extension."""

import numpy as np
import pytest

from repro.control.bayesopt import BayesianOptimizer
from repro.control.gp import GaussianProcess
from repro.harness.runner import run_kernel
from repro.robots.ball_thrower import BallThrower


def test_ei_is_nonnegative(rng):
    gp = GaussianProcess(length_scale=0.3)
    x = rng.uniform(0, 1, size=(10, 1))
    gp.fit(x, np.sin(3 * x).ravel())
    xq = np.linspace(0, 1, 50)[:, None]
    ei = gp.expected_improvement(xq, best_y=1.0)
    assert (ei >= -1e-12).all()


def test_ei_prefers_promising_regions():
    gp = GaussianProcess(length_scale=0.15, noise_var=1e-6)
    x = np.array([[0.0], [0.5], [1.0]])
    y = np.array([0.0, 1.0, 0.0])
    gp.fit(x, y)
    ei = gp.expected_improvement(
        np.array([[0.5], [0.05]]), best_y=float(y.max())
    )
    # Near the incumbent max with some local uncertainty vs a known-bad
    # region: the max's neighborhood must score at least as well.
    ei_near_best = gp.expected_improvement(
        np.array([[0.45]]), best_y=float(y.max())
    )[0]
    ei_at_bad = gp.expected_improvement(
        np.array([[0.02]]), best_y=float(y.max())
    )[0]
    assert ei_near_best >= 0.0
    assert np.isfinite(ei_at_bad)


def test_ei_vanishes_where_certain_and_worse():
    gp = GaussianProcess(length_scale=0.1, noise_var=1e-8)
    x = np.array([[0.0], [1.0]])
    gp.fit(x, np.array([0.0, 5.0]))
    # At the known-bad training point, uncertainty ~0 and mean << best.
    ei = gp.expected_improvement(np.array([[0.0]]), best_y=5.0)
    assert ei[0] < 1e-6


def test_bo_with_ei_optimizes():
    thrower = BallThrower()
    bo = BayesianOptimizer(
        thrower.reward,
        thrower.parameter_bounds,
        acquisition="ei",
        rng=np.random.default_rng(0),
    )
    _, best = bo.optimize(n_iterations=30)
    assert best > -0.5


def test_bo_invalid_acquisition_raises():
    with pytest.raises(ValueError, match="acquisition"):
        BayesianOptimizer(lambda x: 0.0, np.array([[0.0, 1.0]]),
                          acquisition="magic")


def test_kernel_acquisition_flag():
    result = run_kernel("bo", iterations=10, candidates=128,
                        acquisition="ei", seed=1)
    assert result.config.acquisition == "ei"
    assert result.output["best_reward"] > -2.0
