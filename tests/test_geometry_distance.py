"""Tests for distance metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.distance import (
    angular_difference,
    euclidean,
    euclidean_batch,
    joint_space_distance,
    path_length,
    squared_euclidean,
)

vectors = st.lists(st.floats(-10, 10, allow_nan=False), min_size=2, max_size=6)


def test_euclidean_basics():
    assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)
    assert squared_euclidean([0, 0], [3, 4]) == pytest.approx(25.0)


@given(vectors)
def test_distance_to_self_is_zero(v):
    assert euclidean(v, v) == pytest.approx(0.0)


@given(vectors, vectors)
def test_symmetry(a, b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    assert euclidean(a, b) == pytest.approx(euclidean(b, a))


@given(vectors, vectors, vectors)
def test_triangle_inequality(a, b, c):
    n = min(len(a), len(b), len(c))
    a, b, c = a[:n], b[:n], c[:n]
    assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9


def test_euclidean_batch_matches_scalar(rng):
    points = rng.normal(size=(10, 3))
    q = rng.normal(size=3)
    batch = euclidean_batch(points, q)
    for p, d in zip(points, batch):
        assert d == pytest.approx(euclidean(p, q))


def test_angular_difference_wraps():
    assert angular_difference(0.1, 2 * math.pi - 0.1) == pytest.approx(0.2)
    assert angular_difference(math.pi, -math.pi) == pytest.approx(0.0)
    assert angular_difference(0.0, math.pi) == pytest.approx(math.pi)


@given(st.floats(-20, 20), st.floats(-20, 20))
def test_angular_difference_range(a, b):
    d = angular_difference(a, b)
    assert 0.0 <= d <= math.pi + 1e-9


def test_joint_space_distance_plain_vs_wrapped():
    a = [0.1, 0.1]
    b = [2 * math.pi - 0.1, 0.1]
    assert joint_space_distance(a, b) == pytest.approx(2 * math.pi - 0.2)
    assert joint_space_distance(a, b, wrap=True) == pytest.approx(0.2)


def test_path_length():
    pts = np.array([[0.0, 0.0], [3.0, 4.0], [3.0, 8.0]])
    assert path_length(pts) == pytest.approx(9.0)
    assert path_length(pts[:1]) == 0.0
    assert path_length(np.empty((0, 2))) == 0.0
