"""The hot-path perf-regression harness (``rtrbench bench``)."""

from __future__ import annotations

import json

import pytest

from repro.harness.bench import render_report, run_bench, run_bench_record
from repro.results import evaluate_gates, record_from_bench

PHASES = ("raycast", "collision", "nn")
FIELDS = (
    "reference_s",
    "vectorized_s",
    "reference_cpu_s",
    "vectorized_cpu_s",
    "speedup",
    "ops",
)

#: Per-phase speedup floors as shipped in the default gate policy.
FLOORS = {"raycast": 5.0, "collision": 3.0, "nn": 2.0}


@pytest.fixture(scope="module")
def smoke_results():
    return run_bench(smoke=True)


def test_schema(smoke_results):
    assert set(smoke_results) == set(PHASES)
    for phase in PHASES:
        row = smoke_results[phase]
        assert set(row) == set(FIELDS)
        assert row["reference_s"] > 0.0
        assert row["vectorized_s"] > 0.0
        assert row["speedup"] == pytest.approx(
            row["reference_s"] / row["vectorized_s"]
        )
        assert isinstance(row["ops"], int) and row["ops"] > 0


def test_ops_deterministic(smoke_results):
    again = run_bench(smoke=True)
    for phase in PHASES:
        assert again[phase]["ops"] == smoke_results[phase]["ops"]


def test_cpu_time_recorded(smoke_results):
    for phase in PHASES:
        assert smoke_results[phase]["reference_cpu_s"] >= 0.0
        assert smoke_results[phase]["vectorized_cpu_s"] >= 0.0


def test_parallel_bench_matches_serial_ops(smoke_results):
    parallel = run_bench(smoke=True, jobs=3)
    assert set(parallel) == set(PHASES)
    for phase in PHASES:
        assert parallel[phase]["ops"] == smoke_results[phase]["ops"]


def test_gc_reenabled_after_bench(smoke_results):
    import gc

    assert gc.isenabled()


def test_render_report_lists_every_phase(smoke_results):
    text = render_report(smoke_results)
    for phase in PHASES:
        assert phase in text


# -- run records ---------------------------------------------------------------


def test_run_bench_record_mints_phase_measurements():
    record = run_bench_record(smoke=True, seed=7, jobs=2)
    assert record.kind == "bench"
    assert record.has_tag("smoke")
    assert record.provenance["seed"] == 7
    assert record.provenance["jobs"] == 2
    for phase in PHASES:
        speedup = record.metric(f"{phase}.speedup")
        assert speedup is not None and speedup > 0.0
        assert record.metric(f"{phase}.ops") > 0
    # The nested legacy layout survives as the record's detail payload.
    assert set(record.detail) == set(PHASES)


def test_run_bench_record_pins_thread_environment():
    record = run_bench_record(smoke=True)
    thread_env = record.environment.thread_env
    assert thread_env.get("OMP_NUM_THREADS")
    assert thread_env.get("OPENBLAS_NUM_THREADS")


def _synthetic_results(speedups):
    return {
        phase: {
            "reference_s": speedup,
            "vectorized_s": 1.0,
            "reference_cpu_s": speedup,
            "vectorized_cpu_s": 1.0,
            "speedup": speedup,
            "ops": 1,
        }
        for phase, speedup in speedups.items()
    }


def test_speedup_gates_pass_above_floors():
    results = _synthetic_results(
        {phase: floor * 2.0 for phase, floor in FLOORS.items()}
    )
    record = record_from_bench(results, smoke=False)
    outcomes = evaluate_gates(record)
    assert outcomes and all(r.passed for r in outcomes)


def test_speedup_gates_flag_regression():
    results = _synthetic_results({phase: 1.0 for phase in FLOORS})
    record = record_from_bench(results, smoke=False)
    failures = [r for r in evaluate_gates(record) if r.failed]
    assert len(failures) == len(FLOORS)
    assert all("violates" in r.reason for r in failures)


def test_speedup_gates_flag_missing_phase():
    record = record_from_bench({}, smoke=False)
    failures = [r for r in evaluate_gates(record) if r.failed]
    assert len(failures) == len(FLOORS)
    assert all("absent" in r.reason for r in failures)


def test_smoke_record_skips_speedup_gates():
    results = _synthetic_results({phase: 1.0 for phase in FLOORS})
    record = record_from_bench(results, smoke=True)
    outcomes = evaluate_gates(record)
    assert outcomes and all(r.status == "skip" for r in outcomes)


def test_cli_smoke(tmp_path, capsys):
    from repro.harness.cli import main

    out = tmp_path / "bench.json"
    assert main(["bench", "--smoke", "--output", str(out)]) == 0
    document = json.loads(out.read_text())
    assert document["kind"] == "bench"
    assert document["schema_version"] >= 2
    assert "raycast.speedup" in document["measurements"]
    assert set(document["detail"]) == set(PHASES)
    assert "speedup" in capsys.readouterr().out
