"""The hot-path perf-regression harness (``rtrbench bench``)."""

from __future__ import annotations

import json

import pytest

from repro.harness.bench import (
    SPEEDUP_FLOORS,
    check_floors,
    render_report,
    run_bench,
    write_report,
)

PHASES = ("raycast", "collision", "nn")
FIELDS = (
    "reference_s",
    "vectorized_s",
    "reference_cpu_s",
    "vectorized_cpu_s",
    "speedup",
    "ops",
)


@pytest.fixture(scope="module")
def smoke_results():
    return run_bench(smoke=True)


def test_schema(smoke_results):
    assert set(smoke_results) == set(PHASES)
    for phase in PHASES:
        row = smoke_results[phase]
        assert set(row) == set(FIELDS)
        assert row["reference_s"] > 0.0
        assert row["vectorized_s"] > 0.0
        assert row["speedup"] == pytest.approx(
            row["reference_s"] / row["vectorized_s"]
        )
        assert isinstance(row["ops"], int) and row["ops"] > 0


def test_ops_deterministic(smoke_results):
    again = run_bench(smoke=True)
    for phase in PHASES:
        assert again[phase]["ops"] == smoke_results[phase]["ops"]


def test_cpu_time_recorded(smoke_results):
    for phase in PHASES:
        assert smoke_results[phase]["reference_cpu_s"] >= 0.0
        assert smoke_results[phase]["vectorized_cpu_s"] >= 0.0


def test_parallel_bench_matches_serial_ops(smoke_results):
    parallel = run_bench(smoke=True, jobs=3)
    assert set(parallel) == set(PHASES)
    for phase in PHASES:
        assert parallel[phase]["ops"] == smoke_results[phase]["ops"]


def test_gc_reenabled_after_bench(smoke_results):
    import gc

    assert gc.isenabled()


def test_report_roundtrip(smoke_results, tmp_path):
    path = tmp_path / "BENCH_hotpaths.json"
    write_report(smoke_results, str(path))
    loaded = json.loads(path.read_text())
    assert set(loaded) == set(PHASES)
    for phase in PHASES:
        assert loaded[phase]["ops"] == smoke_results[phase]["ops"]


def test_render_report_lists_every_phase(smoke_results):
    text = render_report(smoke_results)
    for phase in PHASES:
        assert phase in text


def test_floor_check_passes_above_floors():
    results = {
        phase: {
            "reference_s": floor * 2.0,
            "vectorized_s": 1.0,
            "speedup": floor * 2.0,
            "ops": 1,
        }
        for phase, floor in SPEEDUP_FLOORS.items()
    }
    assert check_floors(results) == []


def test_floor_check_flags_regression():
    results = {
        phase: {
            "reference_s": 1.0,
            "vectorized_s": 1.0,
            "speedup": 1.0,
            "ops": 1,
        }
        for phase in SPEEDUP_FLOORS
    }
    failures = check_floors(results)
    assert len(failures) == len(SPEEDUP_FLOORS)
    assert all("below floor" in f for f in failures)


def test_floor_check_flags_missing_phase():
    failures = check_floors({})
    assert len(failures) == len(SPEEDUP_FLOORS)
    assert all("missing" in f for f in failures)


def test_cli_smoke(tmp_path, capsys):
    from repro.harness.cli import main

    out = tmp_path / "bench.json"
    assert main(["bench", "--smoke", "--output", str(out)]) == 0
    assert set(json.loads(out.read_text())) == set(PHASES)
    assert "speedup" in capsys.readouterr().out
