"""The hot-path perf-regression harness (``rtrbench bench``)."""

from __future__ import annotations

import json

import pytest

from repro.harness.bench import render_report, run_bench, run_bench_record
from repro.results import evaluate_gates, record_from_bench

PHASES = ("raycast", "collision", "nn", "search_dijkstra", "search_pp3d")
FIELDS = (
    "reference_s",
    "vectorized_s",
    "reference_cpu_s",
    "vectorized_cpu_s",
    "speedup",
    "ops",
)

#: Per-phase speedup floors as shipped in the default gate policy.
#: These gates fail when their metric is absent (``on_missing: fail``).
FLOORS = {"raycast": 5.0, "collision": 3.0, "nn": 2.0}

#: Search-core floors (PR 7): ``on_missing: skip`` so the shipped policy
#: still reproduces legacy verdicts on records that predate the metrics.
SEARCH_FLOORS = {"search_dijkstra": 5.0, "search_pp3d": 2.0}


@pytest.fixture(scope="module")
def smoke_results():
    return run_bench(smoke=True)


def test_schema(smoke_results):
    assert set(smoke_results) == set(PHASES)
    for phase in PHASES:
        row = smoke_results[phase]
        assert set(row) == set(FIELDS)
        assert row["reference_s"] > 0.0
        assert row["vectorized_s"] > 0.0
        assert row["speedup"] == pytest.approx(
            row["reference_s"] / row["vectorized_s"]
        )
        assert isinstance(row["ops"], int) and row["ops"] > 0


def test_ops_deterministic(smoke_results):
    again = run_bench(smoke=True)
    for phase in PHASES:
        assert again[phase]["ops"] == smoke_results[phase]["ops"]


def test_cpu_time_recorded(smoke_results):
    for phase in PHASES:
        assert smoke_results[phase]["reference_cpu_s"] >= 0.0
        assert smoke_results[phase]["vectorized_cpu_s"] >= 0.0


def test_parallel_bench_matches_serial_ops(smoke_results):
    parallel = run_bench(smoke=True, jobs=3)
    assert set(parallel) == set(PHASES)
    for phase in PHASES:
        assert parallel[phase]["ops"] == smoke_results[phase]["ops"]


def test_gc_reenabled_after_bench(smoke_results):
    import gc

    assert gc.isenabled()


def test_render_report_lists_every_phase(smoke_results):
    text = render_report(smoke_results)
    for phase in PHASES:
        assert phase in text


# -- run records ---------------------------------------------------------------


def test_run_bench_record_mints_phase_measurements():
    record = run_bench_record(smoke=True, seed=7, jobs=2)
    assert record.kind == "bench"
    assert record.has_tag("smoke")
    assert record.provenance["seed"] == 7
    assert record.provenance["jobs"] == 2
    for phase in PHASES:
        speedup = record.metric(f"{phase}.speedup")
        assert speedup is not None and speedup > 0.0
        assert record.metric(f"{phase}.ops") > 0
    # The nested legacy layout survives as the record's detail payload.
    assert set(record.detail) == set(PHASES)


def test_run_bench_record_pins_thread_environment():
    record = run_bench_record(smoke=True)
    thread_env = record.environment.thread_env
    assert thread_env.get("OMP_NUM_THREADS")
    assert thread_env.get("OPENBLAS_NUM_THREADS")


def _synthetic_results(speedups):
    return {
        phase: {
            "reference_s": speedup,
            "vectorized_s": 1.0,
            "reference_cpu_s": speedup,
            "vectorized_cpu_s": 1.0,
            "speedup": speedup,
            "ops": 1,
        }
        for phase, speedup in speedups.items()
    }


def test_speedup_gates_pass_above_floors():
    floors = {**FLOORS, **SEARCH_FLOORS}
    results = _synthetic_results(
        {phase: floor * 2.0 for phase, floor in floors.items()}
    )
    record = record_from_bench(results, smoke=False)
    outcomes = evaluate_gates(record)
    assert outcomes and all(r.passed for r in outcomes)


def test_speedup_gates_flag_regression():
    floors = {**FLOORS, **SEARCH_FLOORS}
    results = _synthetic_results({phase: 1.0 for phase in floors})
    record = record_from_bench(results, smoke=False)
    failures = [r for r in evaluate_gates(record) if r.failed]
    assert len(failures) == len(floors)
    assert all("violates" in r.reason for r in failures)


def test_speedup_gates_flag_missing_phase():
    record = record_from_bench({}, smoke=False)
    outcomes = evaluate_gates(record)
    failures = [r for r in outcomes if r.failed]
    assert len(failures) == len(FLOORS)
    assert all("absent" in r.reason for r in failures)
    # The search floors step aside instead: records that predate the
    # search metrics must keep their legacy verdicts.
    search_names = {f"bench.{p.replace('_', '-')}-speedup-floor"
                    for p in SEARCH_FLOORS}
    skipped = {r.gate for r in outcomes if r.status == "skip"}
    assert search_names <= skipped


def test_smoke_record_skips_speedup_gates():
    results = _synthetic_results({phase: 1.0 for phase in FLOORS})
    record = record_from_bench(results, smoke=True)
    outcomes = evaluate_gates(record)
    assert outcomes and all(r.status == "skip" for r in outcomes)


def test_cli_smoke(tmp_path, capsys):
    from repro.harness.cli import main

    out = tmp_path / "bench.json"
    assert main(["bench", "--smoke", "--output", str(out)]) == 0
    document = json.loads(out.read_text())
    assert document["kind"] == "bench"
    assert document["schema_version"] >= 2
    assert "raycast.speedup" in document["measurements"]
    assert set(document["detail"]) == set(PHASES)
    assert "speedup" in capsys.readouterr().out


# -- phase filtering -----------------------------------------------------------


def test_select_phases_glob_and_exact():
    from repro.harness.bench import BENCH_PHASES, select_phases

    assert list(select_phases(None)) == list(BENCH_PHASES)
    assert list(select_phases(["search_*"])) == [
        "search_dijkstra", "search_pp3d",
    ]
    assert list(select_phases(["nn"])) == ["nn"]
    # Order follows BENCH_PHASES, duplicates collapse.
    assert list(select_phases(["search_pp3d", "*"])) == list(BENCH_PHASES)


def test_select_phases_unknown_pattern_raises():
    from repro.harness.bench import select_phases

    with pytest.raises(ValueError, match="no bench phases match"):
        select_phases(["gpu_*"])


def test_run_bench_phase_filter_runs_subset():
    results = run_bench(smoke=True, phases=["nn"])
    assert set(results) == {"nn"}
    assert results["nn"]["ops"] > 0


def test_cli_phases_filter(tmp_path, capsys):
    from repro.harness.cli import main

    out = tmp_path / "bench_nn.json"
    assert main(
        ["bench", "--smoke", "--phases", "nn", "--output", str(out)]
    ) == 0
    document = json.loads(out.read_text())
    assert set(document["detail"]) == {"nn"}
    assert "skipping gate enforcement" in capsys.readouterr().out


def test_cli_phases_unknown_pattern_exits_2(capsys):
    from repro.harness.cli import main

    assert main(["bench", "--smoke", "--phases", "warpdrive"]) == 2
    assert "no bench phases match" in capsys.readouterr().err
