"""Tests for the movtar cost fields."""

import numpy as np
import pytest

from repro.envs.costmap import CostField, synthetic_costmap, target_trajectory


def test_synthetic_costmap_properties():
    field = synthetic_costmap(rows=40, cols=40, seed=0)
    assert field.shape == (40, 40)
    free = ~field.obstacles
    assert (field.cost[free] >= 1.0).all()
    assert 0.0 < field.obstacles.mean() < 0.4


def test_costmap_deterministic():
    a = synthetic_costmap(seed=7)
    b = synthetic_costmap(seed=7)
    assert np.array_equal(a.cost, b.cost)
    assert np.array_equal(a.obstacles, b.obstacles)


def test_cost_field_validation():
    with pytest.raises(ValueError, match="equal shape"):
        CostField(np.ones((3, 3)), np.zeros((4, 4), dtype=bool))
    with pytest.raises(ValueError, match="positive"):
        CostField(np.zeros((3, 3)), np.zeros((3, 3), dtype=bool))


def test_is_free_and_in_bounds():
    field = synthetic_costmap(rows=20, cols=20, seed=1)
    assert not field.is_free(-1, 0)
    assert not field.is_free(0, 20)
    r, c = np.argwhere(field.obstacles)[0]
    assert not field.is_free(int(r), int(c))


def test_target_trajectory_length_and_freedom():
    field = synthetic_costmap(rows=48, cols=48, seed=2)
    traj = target_trajectory(field, 100, seed=2)
    assert traj.shape == (100, 2)
    for r, c in traj:
        assert field.in_bounds(int(r), int(c))
        assert not field.obstacles[int(r), int(c)]


def test_target_trajectory_moves_smoothly():
    field = synthetic_costmap(rows=48, cols=48, seed=3)
    traj = target_trajectory(field, 60, seed=3)
    steps = np.abs(np.diff(traj, axis=0)).max(axis=1)
    # Cell-to-cell motion (allowing small obstacle-avoidance nudges).
    assert steps.max() <= 3
