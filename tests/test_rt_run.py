"""End-to-end tests for ``run_rt``, the antagonist pool, and the rt CLI."""

from __future__ import annotations

import json

import pytest

from repro.harness.cli import main
from repro.results import evaluate_gates, record_from_rt
from repro.rt.interference import AntagonistPool
from repro.rt.run import run_rt

#: Tiny cem configuration: sub-millisecond jobs keep these tests fast.
CEM_OVERRIDES = dict(iterations=1, samples=3)


def _gate_by_name(record):
    return {r.gate: r for r in evaluate_gates(record)}


@pytest.fixture(scope="module")
def smoke_report():
    """One shared smoke run of cem as a 5ms periodic task."""
    return run_rt(
        "cem",
        period_ms=5.0,
        jobs=8,
        warmup=1,
        smoke=True,
        **CEM_OVERRIDES,
    )


def test_report_header_block(smoke_report):
    rt = smoke_report["rt"]
    assert rt["kernel"] == "15.cem"
    assert rt["stage"] == "control"
    assert rt["period_ms"] == pytest.approx(5.0)
    assert rt["deadline_ms"] == pytest.approx(5.0)  # defaults to the period
    assert rt["jobs"] == 8
    assert rt["smoke"] is True
    assert not rt["calibrated"]


def test_report_has_quantiles_jitter_miss_rate_and_verdict(smoke_report):
    unloaded = smoke_report["conditions"]["unloaded"]
    assert unloaded["jobs"] == 8
    for block in ("response_ms", "latency_ms", "roi_ms"):
        assert unloaded[block]["count"] == 8
        assert (
            unloaded[block]["p50"]
            <= unloaded[block]["p99"]
            <= unloaded[block]["max"]
        )
    assert 0.0 <= unloaded["miss_rate"] <= 1.0
    assert unloaded["jitter_ms"]["max"] >= 0.0
    assert smoke_report["slo"]["verdict"] in ("pass", "fail")
    assert smoke_report["degradation"] is None


def test_report_phase_breakdown_uses_shared_profiler_stats(smoke_report):
    breakdown = smoke_report["conditions"]["unloaded"]["phase_breakdown"]
    assert breakdown["dominant"] in breakdown["phases"]
    for stats in breakdown["phases"].values():
        assert stats["calls"] == 8
        assert stats["min_ms"] <= stats["mean_ms"] <= stats["max_ms"]
    assert sum(s["share"] for s in breakdown["phases"].values()) == (
        pytest.approx(1.0)
    )


def test_smoke_records_are_gate_exempt(smoke_report):
    record = record_from_rt(smoke_report)
    assert record.has_tag("smoke")
    outcomes = evaluate_gates(record)
    assert outcomes and all(r.status == "skip" for r in outcomes)


def test_rt_record_measurements(smoke_report):
    record = record_from_rt(smoke_report)
    assert record.kind == "rt"
    assert record.metric("rt.period_ms") == pytest.approx(5.0)
    assert record.metric("slo.pass") in (0.0, 1.0)
    assert record.metric("unloaded.response_p99_ms") > 0.0
    assert record.metric("unloaded.miss_rate") is not None
    assert record.provenance["kernel"] == "15.cem"


def test_default_period_comes_from_config_table():
    from repro.harness.config import rt_defaults

    report = run_rt(
        "cem", jobs=2, warmup=0, smoke=True, **CEM_OVERRIDES
    )
    assert report["rt"]["period_ms"] == pytest.approx(
        rt_defaults("15.cem").period_ms
    )


def test_zero_period_auto_calibrates():
    report = run_rt(
        "cem", period_ms=0, jobs=2, warmup=0, smoke=True, **CEM_OVERRIDES
    )
    assert report["rt"]["calibrated"]
    assert report["rt"]["period_ms"] > 0.0


def test_slo_gate_flags_failed_slo():
    report = run_rt(
        "cem",
        period_ms=5.0,
        deadline_ms=0.0001,  # impossible deadline: every job misses
        jobs=3,
        warmup=0,
        smoke=False,
        **CEM_OVERRIDES,
    )
    assert report["conditions"]["unloaded"]["miss_rate"] == 1.0
    assert report["slo"]["verdict"] == "fail"
    by_name = _gate_by_name(record_from_rt(report))
    assert by_name["rt.slo-pass"].failed


def test_interference_gate_flags_non_degrading_interference():
    report = {
        "rt": {"period_ms": 5.0, "deadline_ms": 5.0, "smoke": False},
        "conditions": {},
        "slo": {"verdict": "pass", "reasons": []},
        "degradation": {"p50_ratio": 1.0, "p99_ratio": 0.98,
                        "miss_rate_delta": 0.0},
    }
    by_name = _gate_by_name(record_from_rt(report))
    assert by_name["rt.slo-pass"].passed
    assert by_name["rt.interference-degrades"].failed


def test_interference_gate_skips_unloaded_only_run():
    report = {
        "rt": {"period_ms": 5.0, "deadline_ms": 5.0, "smoke": False},
        "conditions": {},
        "slo": {"verdict": "pass", "reasons": []},
        "degradation": None,
    }
    by_name = _gate_by_name(record_from_rt(report))
    assert by_name["rt.interference-degrades"].status == "skip"


def test_unknown_kernel_raises():
    with pytest.raises(KeyError):
        run_rt("no-such-kernel", jobs=1, smoke=True)


# -- step granularity ----------------------------------------------------------


#: Tiny dmp configuration: ~0.03ms steps, 31 steps per episode.
DMP_OVERRIDES = dict(demo_steps=60, dt=0.05, basis=8)


@pytest.fixture(scope="module")
def step_report():
    """One shared per-step smoke run of dmp paced at 2ms."""
    return run_rt(
        "dmp",
        period_ms=2.0,
        jobs=12,
        warmup=2,
        smoke=True,
        granularity="step",
        **DMP_OVERRIDES,
    )


def test_step_report_declares_granularity(step_report):
    rt = step_report["rt"]
    assert rt["granularity"] == "step"
    assert rt["steps_per_episode"] > 1
    assert rt["deadline_ms"] == pytest.approx(2.0)  # defaults to period


def test_step_report_latencies_are_per_step(step_report):
    unloaded = step_report["conditions"]["unloaded"]
    assert unloaded["jobs"] == 12
    assert unloaded["response_ms"]["count"] == 12
    # One dmp Euler step is far quicker than a full batch rollout.
    assert unloaded["roi_ms"]["p50"] < 1.0


def test_step_report_tracks_episode_reopening(step_report):
    unloaded = step_report["conditions"]["unloaded"]
    steps_per_episode = step_report["rt"]["steps_per_episode"]
    total_steps = 12 + 2  # measured + warmup jobs, one step each
    import math

    assert unloaded["episodes"] == math.ceil(total_steps / steps_per_episode)
    assert 0 < unloaded["last_episode_steps"] <= steps_per_episode


def test_step_record_mints_step_measurements(step_report):
    record = record_from_rt(step_report)
    unloaded = step_report["conditions"]["unloaded"]
    assert record.metric("rt.step.p99_ms") == pytest.approx(
        unloaded["response_ms"]["p99"]
    )
    assert record.metric("rt.step.miss_rate") == pytest.approx(
        unloaded["miss_rate"]
    )
    assert record.metric("rt.step.p99_deadline_ratio") == pytest.approx(
        unloaded["response_ms"]["p99"] / step_report["rt"]["deadline_ms"]
    )
    assert record.provenance["granularity"] == "step"


def test_run_granularity_records_omit_step_measurements(smoke_report):
    record = record_from_rt(smoke_report)
    assert record.metric("rt.step.p99_ms") is None
    assert record.provenance["granularity"] == "run"
    # The step gates step aside instead of failing on run-mode records.
    by_name = _gate_by_name(record)
    assert by_name["rt.step-miss-rate-ceiling"].status == "skip"
    assert by_name["rt.step-p99-deadline-ceiling"].status == "skip"


def test_step_granularity_calibrates_from_step_times():
    report = run_rt(
        "dmp",
        period_ms=0,
        jobs=4,
        warmup=0,
        smoke=True,
        granularity="step",
        **DMP_OVERRIDES,
    )
    assert report["rt"]["calibrated"]
    # Calibration keys off single-step latency, not whole-episode time:
    # even with headroom it lands far under the ~100x longer batch rollout.
    assert 0.0 < report["rt"]["period_ms"] < 100.0


def test_step_granularity_on_batch_kernel_is_rejected():
    with pytest.raises(ValueError, match="not steppable"):
        run_rt("16.bo", jobs=1, smoke=True, granularity="step")


def test_unknown_granularity_is_rejected():
    with pytest.raises(ValueError, match="granularity"):
        run_rt("dmp", jobs=1, smoke=True, granularity="icp")


# -- interference --------------------------------------------------------------


@pytest.mark.parametrize("kind", ["cpu", "membw", "mixed"])
def test_antagonist_pool_starts_and_stops(kind):
    pool = AntagonistPool(2, kind=kind)
    try:
        pool.start()
        assert pool.alive_count() == 2
    finally:
        pool.stop()
    assert pool.alive_count() == 0


def test_antagonist_pool_context_manager():
    with AntagonistPool(1, kind="cpu") as pool:
        assert pool.alive_count() == 1
    assert pool.alive_count() == 0


def test_antagonist_pool_zero_count_is_noop():
    with AntagonistPool(0) as pool:
        assert pool.alive_count() == 0


def test_antagonist_pool_rejects_bad_arguments():
    with pytest.raises(ValueError, match="kind"):
        AntagonistPool(1, kind="quantum")
    with pytest.raises(ValueError, match="count"):
        AntagonistPool(-1)


def test_run_rt_with_antagonists_records_both_conditions():
    report = run_rt(
        "cem",
        period_ms=2.0,
        jobs=6,
        warmup=1,
        antagonists=1,
        antagonist_kind="cpu",
        smoke=True,
        **CEM_OVERRIDES,
    )
    assert set(report["conditions"]) == {"unloaded", "loaded"}
    assert report["conditions"]["loaded"]["antagonists"] == 1
    degradation = report["degradation"]
    assert degradation is not None
    assert degradation["p99_ratio"] > 0.0
    assert "miss_rate_delta" in degradation
    record = record_from_rt(report)
    assert record.metric("loaded.response_p99_ms") > 0.0
    assert record.metric("degradation.p99_ratio") == pytest.approx(
        degradation["p99_ratio"]
    )


# -- CLI -----------------------------------------------------------------------


def test_cli_rt_smoke_end_to_end(tmp_path, capsys):
    target = tmp_path / "BENCH_rt.json"
    code = main(
        [
            "rt", "cem", "--smoke", "--jobs", "5", "--period-ms", "5",
            "--deadline-ms", "5", "--output", str(target),
            "--iterations", "1", "--samples", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "rt 15.cem" in out
    assert "SLO:" in out
    assert "record stored at" in out
    document = json.loads(target.read_text())
    assert document["kind"] == "rt"
    assert document["schema_version"] >= 2
    assert "unloaded.response_p99_ms" in document["measurements"]
    assert "slo.pass" in document["measurements"]
    # The nested legacy report survives as the record's detail payload.
    report = document["detail"]
    assert set(report) == {"rt", "conditions", "degradation", "slo"}
    unloaded = report["conditions"]["unloaded"]
    for key in ("p50", "p99", "max"):
        assert key in unloaded["response_ms"]
    assert "jitter_ms" in unloaded
    assert "miss_rate" in unloaded
    assert report["slo"]["verdict"] in ("pass", "fail")


def test_cli_rt_step_granularity_end_to_end(tmp_path, capsys):
    target = tmp_path / "BENCH_rt_step.json"
    code = main(
        [
            "rt", "dmp", "--smoke", "--granularity", "step",
            "--jobs", "6", "--warmup", "1",
            "--period-ms", "2", "--output", str(target),
            "--demo-steps", "60", "--dt", "0.05", "--basis", "8",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "per-step" in out
    assert "episodes:" in out
    document = json.loads(target.read_text())
    assert document["measurements"]["rt.step.p99_ms"]["value"] > 0.0
    assert "rt.step.miss_rate" in document["measurements"]
    assert document["detail"]["rt"]["granularity"] == "step"


def test_cli_rt_step_on_batch_kernel_errors(capsys):
    assert main(["rt", "16.bo", "--smoke", "--granularity", "step"]) == 2
    assert "not steppable" in capsys.readouterr().err


def test_cli_rt_unknown_kernel_errors(capsys):
    assert main(["rt", "doesnotexist"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_rt_impossible_deadline_fails_gates(tmp_path, capsys):
    code = main(
        [
            "rt", "cem", "--jobs", "3", "--warmup", "0",
            "--period-ms", "5", "--deadline-ms", "0.0001",
            "--output", str(tmp_path / "r.json"),
            "--iterations", "1", "--samples", "3",
        ]
    )
    assert code == 1
    assert "GATE FAILURE rt.slo-pass" in capsys.readouterr().err


def test_cli_rt_no_check_suppresses_gate_exit(tmp_path):
    code = main(
        [
            "rt", "cem", "--jobs", "3", "--warmup", "0",
            "--period-ms", "5", "--deadline-ms", "0.0001", "--no-check",
            "--output", str(tmp_path / "r.json"),
            "--iterations", "1", "--samples", "3",
        ]
    )
    assert code == 0
