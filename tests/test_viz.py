"""Tests for the ASCII visualization helpers."""

import numpy as np
import pytest

from repro.envs.arm_maps import default_arm, map_c
from repro.geometry.grid2d import OccupancyGrid2D
from repro.viz import render_curve, render_grid, render_workspace


def test_render_grid_symbols(small_grid):
    text = render_grid(small_grid)
    assert "#" in text  # border + block
    assert "." in text  # free space
    lines = text.splitlines()
    assert len(lines) == small_grid.rows
    assert all(len(line) == small_grid.cols for line in lines)


def test_render_grid_path_and_markers(small_grid):
    path = [(2, c) for c in range(2, 10)]
    text = render_grid(small_grid, path=path, markers={(2, 2): "S"})
    assert "*" in text
    assert "S" in text


def test_render_grid_downsamples():
    grid = OccupancyGrid2D.empty(400, 500)
    grid.fill_border(1)
    text = render_grid(grid, max_width=80, max_height=30)
    lines = text.splitlines()
    assert len(lines) <= 30
    assert max(len(line) for line in lines) <= 80
    assert "#" in text


def test_render_grid_is_top_down(small_grid):
    """Row 0 (bottom of world frame) renders as the LAST text line."""
    grid = OccupancyGrid2D.empty(5, 5)
    grid.set_occupied(0, 0)
    lines = render_grid(grid).splitlines()
    assert lines[-1][0] == "#"
    assert lines[0][0] == "."


def test_render_curve_bounds_and_shape():
    text = render_curve([0.0, 0.5, 1.0, 0.25], label="reward")
    assert "reward" in text
    assert "[0 .. 1]" in text
    assert "o" in text


def test_render_curve_constant_series():
    text = render_curve([2.0, 2.0, 2.0])
    assert "o" in text


def test_render_curve_empty():
    assert "empty" in render_curve([])


def test_render_workspace_draws_obstacles_arm_and_base():
    ws = map_c()
    arm = default_arm()
    q = np.zeros(arm.dof)
    text = render_workspace(ws, arm, [q])
    assert "#" in text  # obstacles
    assert "B" in text  # base
    assert "0" in text  # the configuration's links
