"""Tests for the ROI markers and hook backends."""

import pytest

from repro.harness.roi import ROI, RecordingHooks, roi_begin, roi_end, set_hooks


@pytest.fixture(autouse=True)
def _restore_hooks():
    """Make sure every test leaves the default no-op hooks installed."""
    yield
    set_hooks(None)


def test_default_hooks_are_noops():
    # Must not raise even without an installed backend.
    roi_begin("anything")
    roi_end("anything")


def test_recording_hooks_capture_interval():
    rec = RecordingHooks()
    set_hooks(rec)
    with ROI("kernel"):
        pass
    assert len(rec.intervals) == 1
    name, duration = rec.intervals[0]
    assert name == "kernel"
    assert duration >= 0.0


def test_recording_hooks_nested_rois():
    rec = RecordingHooks()
    set_hooks(rec)
    with ROI("outer"):
        with ROI("inner"):
            pass
    names = [n for n, _ in rec.intervals]
    assert names == ["inner", "outer"]


def test_recording_hooks_end_with_no_matching_begin_raises():
    rec = RecordingHooks()
    set_hooks(rec)
    roi_begin("a")
    with pytest.raises(RuntimeError, match="without matching"):
        roi_end("b")
    # "a" is still open; the error message names it.
    assert rec.open_rois() == ["a"]
    # Clean up the dangling ROI for the autouse fixture.
    set_hooks(None)


def test_recording_hooks_end_without_begin_raises():
    rec = RecordingHooks()
    set_hooks(rec)
    with pytest.raises(RuntimeError, match="without matching"):
        roi_end("orphan")


def test_recording_hooks_interleaved_pairs():
    """begin(a) begin(b) end(a) end(b) records both intervals correctly."""
    rec = RecordingHooks()
    set_hooks(rec)
    roi_begin("a")
    roi_begin("b")
    roi_end("a")
    roi_end("b")
    names = [n for n, _ in rec.intervals]
    assert names == ["a", "b"]
    assert all(dt >= 0.0 for _, dt in rec.intervals)
    rec.assert_balanced()


def test_recording_hooks_same_name_nesting_closes_innermost_first():
    rec = RecordingHooks()
    set_hooks(rec)
    roi_begin("k")
    roi_begin("k")
    roi_end("k")  # closes the inner (most recent) begin
    assert rec.open_rois() == ["k"]
    roi_end("k")
    assert rec.open_rois() == []
    assert len(rec.intervals) == 2
    # Inner interval recorded first and is no longer than the outer one.
    assert rec.intervals[0][1] <= rec.intervals[1][1]


def test_open_rois_reports_outermost_first():
    rec = RecordingHooks()
    set_hooks(rec)
    roi_begin("outer")
    roi_begin("inner")
    assert rec.open_rois() == ["outer", "inner"]
    roi_end("inner")
    roi_end("outer")
    assert rec.open_rois() == []


def test_assert_balanced_raises_on_dangling_begin():
    rec = RecordingHooks()
    set_hooks(rec)
    roi_begin("leak")
    with pytest.raises(RuntimeError, match="leak"):
        rec.assert_balanced()
    roi_end("leak")
    rec.assert_balanced()  # now clean


def test_total_time_filters_by_name():
    rec = RecordingHooks()
    set_hooks(rec)
    with ROI("a"):
        pass
    with ROI("b"):
        pass
    assert rec.total_time("a") <= rec.total_time()
    assert rec.total_time("missing") == 0.0


def test_set_hooks_returns_previous():
    rec = RecordingHooks()
    previous = set_hooks(rec)
    restored = set_hooks(previous)
    assert restored is rec


def test_kernel_run_fires_roi_hooks():
    """Every kernel run must be bracketed by ROI markers (paper section VI)."""
    from repro.harness.runner import run_kernel

    rec = RecordingHooks()
    set_hooks(rec)
    run_kernel("cem", iterations=1, samples=3)
    assert any(name == "15.cem" for name, _ in rec.intervals)
