"""Tests for probabilistic roadmaps (07.prm)."""

import numpy as np
import pytest

from repro.envs.arm_maps import default_arm, map_c, map_f
from repro.harness.profiler import PhaseProfiler
from repro.planning.prm import (
    PrmConfig,
    PrmKernel,
    ProbabilisticRoadmap,
    distant_free_pair,
    find_free_configuration,
    select_workspace,
)


@pytest.fixture(scope="module")
def free_roadmap():
    ws = map_f()
    arm = default_arm()
    roadmap = ProbabilisticRoadmap(arm, ws, k_neighbors=6)
    roadmap.build(120, np.random.default_rng(0))
    return roadmap, arm, ws


def test_build_produces_connected_ish_graph(free_roadmap):
    roadmap, _, _ = free_roadmap
    assert roadmap.n_nodes == 120
    assert roadmap.n_edges > roadmap.n_nodes  # well connected in free space


def test_all_nodes_are_collision_free(free_roadmap):
    roadmap, arm, ws = free_roadmap
    for q in roadmap.nodes[:50]:
        assert not ws.config_collides(arm, q)


def test_edges_are_symmetric(free_roadmap):
    roadmap, _, _ = free_roadmap
    for i, adj in roadmap.edges.items():
        for j, dist in adj:
            back = [d for k, d in roadmap.edges[j] if k == i]
            assert back and back[0] == pytest.approx(dist)


def test_query_finds_path_in_free_space(free_roadmap):
    roadmap, arm, ws = free_roadmap
    rng = np.random.default_rng(5)
    start, goal = distant_free_pair(arm, ws, rng)
    result, waypoints = roadmap.query(start, goal)
    assert result.found
    assert np.allclose(waypoints[0], start)
    assert np.allclose(waypoints[-1], goal)


def test_query_rejects_colliding_endpoint():
    ws = map_c()
    arm = default_arm()
    roadmap = ProbabilisticRoadmap(arm, ws)
    roadmap.build(30, np.random.default_rng(0))
    rect = ws.obstacles[0]
    target = ((rect.xmin + rect.xmax) / 2, (rect.ymin + rect.ymax) / 2)
    angle = np.arctan2(target[1] - ws.base[1], target[0] - ws.base[0])
    colliding = np.array([angle] + [0.0] * (arm.dof - 1))
    if ws.config_collides(arm, colliding):
        with pytest.raises(ValueError, match="collides"):
            roadmap.query(colliding, roadmap.nodes[0])


def test_roadmap_path_edges_are_collision_free():
    ws = map_c()
    arm = default_arm()
    roadmap = ProbabilisticRoadmap(arm, ws, k_neighbors=8, edge_step=0.1)
    roadmap.build(250, np.random.default_rng(1))
    rng = np.random.default_rng(2)
    start, goal = distant_free_pair(arm, ws, rng)
    result, waypoints = roadmap.query(start, goal)
    if result.found:
        for a, b in zip(waypoints[:-1], waypoints[1:]):
            assert not ws.edge_collides(arm, a, b, step=0.1)


def test_find_free_configuration_has_clearance():
    ws = map_c()
    arm = default_arm()
    rng = np.random.default_rng(3)
    q = find_free_configuration(arm, ws, rng)
    assert not ws.config_collides(arm, q)


def test_distant_free_pair_distance_bounds():
    ws = map_f()
    arm = default_arm()
    rng = np.random.default_rng(4)
    a, b = distant_free_pair(arm, ws, rng, min_distance=2.0, max_distance=4.0)
    assert 2.0 <= float(np.linalg.norm(a - b)) <= 4.0


def test_select_workspace_aliases():
    assert select_workspace("map-c").name == "Map-C"
    assert select_workspace("MAP_F").name == "Map-F"
    assert select_workspace("cluttered").name == "Map-C"
    with pytest.raises(ValueError):
        select_workspace("mars")


def test_kernel_profiles_online_phases():
    result = PrmKernel().run(PrmConfig(samples=150))
    out = result.output
    assert out["result"].found
    assert out["offline_time"] > 0.0
    # Online phases present in the ROI profiler.
    assert "search" in result.profiler.stats or "l2_norm" in result.profiler.stats
