"""Tests for the content-keyed workload cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.envs.cache import (
    WorkloadCache,
    cached_workload,
    content_key,
    default_cache,
    set_default_cache,
)


@pytest.fixture
def cache(tmp_path):
    return WorkloadCache(cache_dir=str(tmp_path / "cache"))


# -- keying --------------------------------------------------------------------


def test_content_key_stable_and_param_sensitive():
    a = content_key("map", {"rows": 10, "seed": 0})
    assert a == content_key("map", {"seed": 0, "rows": 10})
    assert a != content_key("map", {"rows": 11, "seed": 0})
    assert a != content_key("cloud", {"rows": 10, "seed": 0})


# -- layering ------------------------------------------------------------------


def test_builds_once_then_serves_from_memory(cache):
    calls = []

    def build():
        calls.append(1)
        return np.arange(4)

    first = cache.get_or_build("m", {"n": 4}, build)
    second = cache.get_or_build("m", {"n": 4}, build)
    assert len(calls) == 1
    assert np.array_equal(first, second)
    assert cache.stats.misses == 1
    assert cache.stats.memory_hits == 1
    assert cache.stats.hits == 1


def test_disk_layer_survives_new_instance(tmp_path):
    cache_dir = str(tmp_path / "cache")
    calls = []

    def build():
        calls.append(1)
        return {"grid": np.ones((3, 3))}

    WorkloadCache(cache_dir=cache_dir).get_or_build("m", {"s": 1}, build)
    fresh = WorkloadCache(cache_dir=cache_dir)
    value = fresh.get_or_build("m", {"s": 1}, build)
    assert len(calls) == 1
    assert np.array_equal(value["grid"], np.ones((3, 3)))
    assert fresh.stats.disk_hits == 1


def test_lru_evicts_but_disk_still_serves(tmp_path):
    cache = WorkloadCache(
        cache_dir=str(tmp_path / "cache"), max_memory_items=1
    )
    cache.get_or_build("m", {"k": 1}, lambda: "one")
    cache.get_or_build("m", {"k": 2}, lambda: "two")  # evicts k=1
    calls = []
    value = cache.get_or_build(
        "m", {"k": 1}, lambda: calls.append(1) or "one"
    )
    assert value == "one"
    assert calls == []  # served from disk, not rebuilt
    assert cache.stats.disk_hits == 1


def test_mutating_a_hit_does_not_poison_the_cache(cache):
    cache.get_or_build("m", {}, lambda: np.zeros(3))
    hit = cache.get_or_build("m", {}, lambda: np.zeros(3))
    hit[:] = 99.0
    clean = cache.get_or_build("m", {}, lambda: np.zeros(3))
    assert np.array_equal(clean, np.zeros(3))


def test_corrupt_disk_entry_is_rebuilt(tmp_path):
    cache_dir = tmp_path / "cache"
    cache = WorkloadCache(cache_dir=str(cache_dir))
    cache.get_or_build("m", {"k": 1}, lambda: "value")
    for entry in cache_dir.glob("*.pkl"):
        entry.write_bytes(b"not a pickle")
    fresh = WorkloadCache(cache_dir=str(cache_dir))
    assert fresh.get_or_build("m", {"k": 1}, lambda: "rebuilt") == "rebuilt"
    assert fresh.stats.misses == 1


def test_disabled_cache_always_builds(tmp_path):
    cache = WorkloadCache(
        cache_dir=str(tmp_path / "cache"), enabled=False
    )
    calls = []
    for _ in range(3):
        cache.get_or_build("m", {}, lambda: calls.append(1) or "v")
    assert len(calls) == 3
    assert cache.stats.hits == 0 and cache.stats.misses == 0


def test_clear_drops_both_layers(cache):
    cache.get_or_build("m", {}, lambda: "v")
    cache.clear()
    calls = []
    cache.get_or_build("m", {}, lambda: calls.append(1) or "v")
    assert calls == [1]


# -- decorator -----------------------------------------------------------------


def test_cached_workload_decorator(tmp_path):
    previous = default_cache()
    set_default_cache(WorkloadCache(cache_dir=str(tmp_path / "cache")))
    try:
        calls = []

        @cached_workload("toy")
        def build_toy(rows=4, seed=0):
            calls.append((rows, seed))
            return np.full(rows, seed)

        first = build_toy(4, seed=3)
        # Same bound arguments (defaults applied) -> same key, no rebuild.
        second = build_toy(rows=4, seed=3)
        assert np.array_equal(first, second)
        assert calls == [(4, 3)]
        build_toy(5, seed=3)
        assert len(calls) == 2
        # The undecorated builder stays reachable and uncached.
        build_toy.build_uncached(4, seed=3)
        assert len(calls) == 3
    finally:
        set_default_cache(previous)


def test_generators_hit_cache_and_stay_deterministic():
    from repro.envs.mapgen import city_like, wean_hall_like
    from repro.envs.pointcloud import living_room

    stats = default_cache().stats
    for build in (
        lambda: wean_hall_like(rows=40, cols=50, seed=5),
        lambda: city_like(rows=48, cols=48, seed=5),
        lambda: living_room(n_points=500, seed=5),
    ):
        first = build()
        hits_before = stats.hits
        second = build()
        assert stats.hits > hits_before
        first_cells = getattr(first, "cells", first)
        second_cells = getattr(second, "cells", second)
        assert np.array_equal(first_cells, second_cells)


def test_cached_map_mutation_is_private():
    from repro.envs.mapgen import wean_hall_like

    grid = wean_hall_like(rows=40, cols=50, seed=6)
    original = grid.cells.copy()
    grid.cells[:] = True
    again = wean_hall_like(rows=40, cols=50, seed=6)
    assert np.array_equal(again.cells, original)
