"""Tests for the priority queue (including a hypothesis heap-order test)."""

import pytest
from hypothesis import given, strategies as st

from repro.search.queues import PriorityQueue


def test_push_pop_order():
    q = PriorityQueue()
    q.push("b", 2.0)
    q.push("a", 1.0)
    q.push("c", 3.0)
    assert q.pop() == ("a", 1.0)
    assert q.pop() == ("b", 2.0)
    assert q.pop() == ("c", 3.0)


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        PriorityQueue().pop()


def test_peek_does_not_remove():
    q = PriorityQueue()
    q.push("x", 5.0)
    assert q.peek() == ("x", 5.0)
    assert len(q) == 1


def test_peek_empty_raises():
    with pytest.raises(IndexError):
        PriorityQueue().peek()


def test_decrease_key_updates_priority():
    q = PriorityQueue()
    q.push("a", 10.0)
    q.push("b", 5.0)
    q.push("a", 1.0)  # decrease
    assert len(q) == 2
    assert q.pop() == ("a", 1.0)


def test_increase_key_also_updates():
    q = PriorityQueue()
    q.push("a", 1.0)
    q.push("a", 10.0)
    q.push("b", 5.0)
    assert q.pop() == ("b", 5.0)
    assert q.pop() == ("a", 10.0)


def test_contains_and_priority_of():
    q = PriorityQueue()
    q.push("a", 2.0)
    assert "a" in q
    assert q.priority_of("a") == 2.0
    assert q.priority_of("missing") is None
    q.pop()
    assert "a" not in q


def test_fifo_tiebreak_for_equal_priorities():
    q = PriorityQueue()
    q.push("first", 1.0)
    q.push("second", 1.0)
    assert q.pop()[0] == "first"


def test_bool_and_len():
    q = PriorityQueue()
    assert not q
    q.push(1, 0.0)
    assert q
    assert len(q) == 1


def test_push_pop_counters():
    q = PriorityQueue()
    q.push("a", 1.0)
    q.push("a", 0.5)
    q.pop()
    assert q.pushes == 2
    assert q.pops == 1


class TestLazyInvalidationSemantics:
    """Pin how stale (tombstoned) heap entries interact with the public
    surface: they must be invisible to every query, in both key
    directions, before and after the live entry is popped."""

    def test_priority_of_reflects_latest_push_not_stale_entry(self):
        q = PriorityQueue()
        q.push("a", 10.0)
        q.push("a", 1.0)  # decrease-key: the 10.0 entry is now stale
        assert q.priority_of("a") == 1.0
        q.push("a", 7.0)  # increase-key: the 1.0 entry is now stale too
        assert q.priority_of("a") == 7.0
        assert "a" in q
        assert len(q) == 1

    def test_popped_item_gone_despite_stale_heap_entries(self):
        q = PriorityQueue()
        q.push("a", 1.0)
        q.push("a", 10.0)  # stale 1.0 entry still at the heap root
        assert q.pop() == ("a", 10.0)
        assert "a" not in q
        assert q.priority_of("a") is None
        assert len(q) == 0
        assert not q
        with pytest.raises(IndexError):
            q.pop()  # the tombstone alone must not satisfy a pop

    def test_peek_skips_stale_root_without_observable_effects(self):
        q = PriorityQueue()
        q.push("a", 1.0)
        q.push("a", 10.0)  # stale 1.0 entry sits at the root
        pops_before = q.pops
        assert q.peek() == ("a", 10.0)
        assert len(q) == 1
        assert q.pops == pops_before  # draining tombstones isn't a pop
        assert q.pop() == ("a", 10.0)

    def test_repush_after_pop_starts_fresh(self):
        q = PriorityQueue()
        q.push("a", 2.0)
        q.push("a", 1.0)
        q.pop()
        q.push("a", 3.0)  # re-entry after pop: a brand-new live entry
        assert "a" in q
        assert q.priority_of("a") == 3.0
        assert q.pop() == ("a", 3.0)

    def test_update_storm_keeps_len_and_pop_consistent(self):
        q = PriorityQueue()
        for i in range(20):
            q.push("a", float(20 - i))
        q.push("b", 50.0)
        assert len(q) == 2
        assert q.pop() == ("a", 1.0)
        assert q.pop() == ("b", 50.0)
        assert len(q) == 0


@given(st.lists(st.tuples(st.integers(0, 50), st.floats(-100, 100,
                                                        allow_nan=False)),
                min_size=1, max_size=100))
def test_pops_come_out_sorted(items):
    """After arbitrary pushes (with updates), pops are non-decreasing."""
    q = PriorityQueue()
    for key, priority in items:
        q.push(key, priority)
    out = []
    while q:
        out.append(q.pop()[1])
    assert out == sorted(out)
    # Each key appears exactly once (updates collapse).
    assert len(out) == len({k for k, _ in items})
