"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_workload_cache(tmp_path_factory):
    """Point the workload cache at a session-temporary directory.

    Keeps test runs from writing ``.rtrbench_cache/`` into the repository
    while still exercising both cache layers; forked suite workers
    inherit the redirected cache.
    """
    from repro.envs.cache import WorkloadCache, set_default_cache

    cache_dir = tmp_path_factory.mktemp("rtrbench_cache")
    set_default_cache(WorkloadCache(cache_dir=str(cache_dir)))
    yield
    set_default_cache(None)


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store(tmp_path_factory):
    """Point the run-record history at a session-temporary directory.

    Keeps CLI-driven tests from appending ``.rtrbench_results/`` into
    the repository while still exercising the store end to end.
    """
    import os

    results_dir = tmp_path_factory.mktemp("rtrbench_results")
    previous = os.environ.get("RTRBENCH_RESULTS_DIR")
    os.environ["RTRBENCH_RESULTS_DIR"] = str(results_dir)
    yield
    if previous is None:
        os.environ.pop("RTRBENCH_RESULTS_DIR", None)
    else:
        os.environ["RTRBENCH_RESULTS_DIR"] = previous


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_grid():
    """A 20x20 grid with a single central obstacle block."""
    from repro.geometry.grid2d import OccupancyGrid2D

    grid = OccupancyGrid2D.empty(20, 20, resolution=1.0)
    grid.fill_border(1)
    grid.fill_rect(8, 8, 12, 12)
    return grid
