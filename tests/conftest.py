"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_grid():
    """A 20x20 grid with a single central obstacle block."""
    from repro.geometry.grid2d import OccupancyGrid2D

    grid = OccupancyGrid2D.empty(20, 20, resolution=1.0)
    grid.fill_border(1)
    grid.fill_rect(8, 8, 12, 12)
    return grid
