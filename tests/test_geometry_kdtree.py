"""Tests for the KD-tree and linear NN index, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.kdtree import KDTree, LinearNN

point_lists = st.lists(
    st.tuples(
        st.floats(-10, 10, allow_nan=False),
        st.floats(-10, 10, allow_nan=False),
        st.floats(-10, 10, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)
queries = st.tuples(
    st.floats(-12, 12, allow_nan=False),
    st.floats(-12, 12, allow_nan=False),
    st.floats(-12, 12, allow_nan=False),
)


def _brute_nearest(points, q):
    d = np.linalg.norm(np.asarray(points) - np.asarray(q), axis=1)
    return float(d.min())


def test_empty_tree_nearest_raises():
    with pytest.raises(ValueError):
        KDTree(2).nearest([0.0, 0.0])


def test_dimension_validation():
    with pytest.raises(ValueError):
        KDTree(0)
    tree = KDTree(3)
    with pytest.raises(ValueError):
        tree.insert([1.0, 2.0])


def test_insert_and_len():
    tree = KDTree(2)
    for i in range(5):
        tree.insert([float(i), 0.0], data=i)
    assert len(tree) == 5


@settings(max_examples=60, deadline=None)
@given(point_lists, queries)
def test_incremental_nearest_matches_brute_force(points, q):
    tree = KDTree(3)
    for i, p in enumerate(points):
        tree.insert(p, data=i)
    _, _, d = tree.nearest(q)
    assert d == pytest.approx(_brute_nearest(points, q), abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(point_lists, queries)
def test_built_nearest_matches_brute_force(points, q):
    tree = KDTree.build(np.asarray(points))
    _, _, d = tree.nearest(q)
    assert d == pytest.approx(_brute_nearest(points, q), abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(point_lists, queries, st.integers(1, 8))
def test_k_nearest_matches_brute_force(points, q, k):
    tree = KDTree(3)
    for i, p in enumerate(points):
        tree.insert(p, data=i)
    results = tree.k_nearest(q, k)
    got = [d for _, _, d in results]
    brute = sorted(
        np.linalg.norm(np.asarray(points) - np.asarray(q), axis=1)
    )[: min(k, len(points))]
    assert len(got) == len(brute)
    assert np.allclose(got, brute, atol=1e-9)
    # Nearest first.
    assert got == sorted(got)


@settings(max_examples=40, deadline=None)
@given(point_lists, queries, st.floats(0.1, 8.0))
def test_within_radius_matches_brute_force(points, q, radius):
    tree = KDTree(3)
    for i, p in enumerate(points):
        tree.insert(p, data=i)
    got = sorted(d for _, _, d in tree.within_radius(q, radius))
    dists = np.linalg.norm(np.asarray(points) - np.asarray(q), axis=1)
    brute = sorted(float(d) for d in dists if d <= radius)
    assert np.allclose(got, brute, atol=1e-9)


def test_payloads_round_trip():
    tree = KDTree(2)
    tree.insert([0.0, 0.0], data="origin")
    tree.insert([5.0, 5.0], data="corner")
    _, data, _ = tree.nearest([0.1, 0.1])
    assert data == "origin"


def test_query_counts_node_visits():
    tree = KDTree(2)
    for i in range(50):
        tree.insert([float(i % 7), float(i % 11)], data=i)
    counts = {}
    tree.nearest(
        [3.0, 3.0],
        count=lambda n, k: counts.__setitem__(n, counts.get(n, 0) + k),
    )
    assert 0 < counts["nn_node_visits"] <= 50
    assert tree.visits == counts["nn_node_visits"]


def test_build_validates_shape():
    with pytest.raises(ValueError):
        KDTree.build(np.zeros(5))


# -- LinearNN ---------------------------------------------------------------


def test_linear_nn_matches_kdtree(rng):
    pts = rng.normal(size=(40, 4))
    lin = LinearNN(4)
    tree = KDTree(4)
    for i, p in enumerate(pts):
        lin.insert(p, i)
        tree.insert(p, i)
    q = rng.normal(size=4)
    _, _, d_lin = lin.nearest(q)
    _, _, d_tree = tree.nearest(q)
    assert d_lin == pytest.approx(d_tree, abs=1e-9)


def test_linear_nn_within_radius(rng):
    pts = rng.normal(size=(30, 2))
    lin = LinearNN(2)
    for i, p in enumerate(pts):
        lin.insert(p, i)
    hits = lin.within_radius([0.0, 0.0], 1.0)
    dists = np.linalg.norm(pts, axis=1)
    assert len(hits) == int((dists <= 1.0).sum())
    got = [d for _, _, d in hits]
    assert got == sorted(got)


def test_linear_nn_empty():
    lin = LinearNN(2)
    with pytest.raises(ValueError):
        lin.nearest([0.0, 0.0])
    assert lin.within_radius([0.0, 0.0], 1.0) == []


def test_linear_nn_dimension_mismatch():
    lin = LinearNN(3)
    with pytest.raises(ValueError):
        lin.insert([1.0, 2.0])
