"""Tests for model predictive control (14.mpc)."""

import numpy as np
import pytest

from repro.control.mpc import (
    ModelPredictiveController,
    MpcConfig,
    MpcKernel,
    reference_trajectory,
)
from repro.harness.profiler import PhaseProfiler
from repro.robots.bicycle import BicycleModel, BicycleState


def test_validation():
    with pytest.raises(ValueError):
        ModelPredictiveController(BicycleModel(), horizon=0)


def test_reference_trajectory_shape():
    ref = reference_trajectory(n_steps=50, speed=5.0)
    assert ref.shape == (51, 4)
    assert (ref[:, 3] == 5.0).all()
    # Consecutive points spaced ~speed*dt.
    step = np.linalg.norm(np.diff(ref[:, :2], axis=0), axis=1)
    assert np.allclose(step, 0.5, atol=0.05)


def test_solve_returns_bounded_controls():
    model = BicycleModel()
    controller = ModelPredictiveController(model, horizon=8, dt=0.1)
    ref = reference_trajectory(n_steps=20, speed=8.0)
    plan = controller.solve(BicycleState(v=8.0), ref[: 8 + 1])
    assert plan.shape == (8, 2)
    assert (np.abs(plan[:, 0]) <= model.max_accel + 1e-9).all()
    assert (np.abs(plan[:, 1]) <= model.max_steer + 1e-9).all()


def test_tracking_straight_road():
    model = BicycleModel()
    controller = ModelPredictiveController(model, horizon=10, dt=0.1)
    ref = reference_trajectory(n_steps=60, speed=8.0, curvature=0.0)
    out = controller.track(BicycleState(v=8.0), ref)
    assert out["errors"].mean() < 0.2


def test_tracking_curvy_road_stays_close():
    model = BicycleModel()
    controller = ModelPredictiveController(model, horizon=12, dt=0.1)
    ref = reference_trajectory(n_steps=100, speed=8.0, curvature=0.3)
    out = controller.track(BicycleState(v=8.0), ref)
    assert out["errors"].mean() < 0.5
    assert out["errors"].max() < 2.0


def test_tracking_recovers_from_initial_offset():
    model = BicycleModel()
    controller = ModelPredictiveController(model, horizon=12, dt=0.1)
    ref = reference_trajectory(n_steps=80, speed=8.0, curvature=0.0)
    out = controller.track(BicycleState(y=1.5, v=8.0), ref)
    # The cross-track error shrinks from the initial 1.5 m offset.
    assert out["errors"][-1] < out["errors"][0]
    assert out["errors"][-1] < 0.4


def test_speed_constraint_respected():
    model = BicycleModel(max_speed=6.0)
    controller = ModelPredictiveController(model, horizon=10, dt=0.1)
    ref = reference_trajectory(n_steps=50, speed=12.0)  # wants too fast
    out = controller.track(BicycleState(v=6.0), ref)
    assert (out["states"][:, 3] <= 6.0 + 1e-9).all()


def test_optimize_phase_dominates():
    prof = PhaseProfiler()
    model = BicycleModel()
    controller = ModelPredictiveController(model, horizon=10, dt=0.1,
                                           profiler=prof)
    ref = reference_trajectory(n_steps=30, speed=8.0)
    controller.track(BicycleState(v=8.0), ref)
    assert prof.fraction("optimize") > 0.6
    assert prof.counters["riccati_steps"] > 0


def test_window_pads_at_the_end():
    model = BicycleModel()
    controller = ModelPredictiveController(model, horizon=10, dt=0.1)
    ref = reference_trajectory(n_steps=5)
    window = controller._window(ref, 3)
    assert window.shape == (11, 4)
    assert np.allclose(window[-1], ref[-1])


def test_kernel_end_to_end():
    result = MpcKernel().run(MpcConfig(steps=60))
    assert result.output["mean_error"] < 0.5
    assert result.profiler.fraction("optimize") > 0.6
