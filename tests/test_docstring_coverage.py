"""Quality gate: every public item in the library carries a docstring.

"Doc comments on every public item" is a deliverable; this meta-test
keeps it true as the code evolves.  Private names (leading underscore)
and dataclass-generated plumbing are exempt.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

# Modules whose import has side effects worth skipping in a meta-test.
_SKIP = {"repro.harness.cli"}


def _walk_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in _SKIP:
            continue
        modules.append(importlib.import_module(info.name))
    return modules


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home module
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_a_docstring():
    missing = [
        m.__name__ for m in _walk_modules() if not inspect.getdoc(m)
    ]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_have_docstrings():
    """Public methods on public classes are documented too."""
    missing = []
    for module in _walk_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isfunction(member)
                        or isinstance(member, (staticmethod, classmethod,
                                               property))):
                    continue
                target = member
                if isinstance(member, (staticmethod, classmethod)):
                    target = member.__func__
                if isinstance(member, property):
                    target = member.fget
                if target is not None and not inspect.getdoc(target):
                    missing.append(f"{module.__name__}.{cls_name}.{name}")
    assert not missing, f"undocumented public methods: {missing}"
