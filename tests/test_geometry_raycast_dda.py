"""Tests for the exact (Amanatides-Woo) ray caster."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.grid2d import OccupancyGrid2D
from repro.geometry.raycast import cast_ray, cast_ray_dda


@pytest.fixture
def walled_grid():
    grid = OccupancyGrid2D.empty(30, 30)
    grid.fill_rect(0, 15, 29, 15)
    return grid


def test_exact_distance_axis_aligned(walled_grid):
    # From x = 2.5 straight toward the wall cell starting at x = 15.0.
    d = cast_ray_dda(walled_grid, 2.5, 10.5, 0.0, 40.0)
    assert d == pytest.approx(12.5)


def test_exact_distance_diagonal():
    grid = OccupancyGrid2D.empty(20, 20)
    grid.set_occupied(10, 10)
    # 45 degrees from (5.5, 5.5): hits cell (10, 10) at its (10, 10)
    # corner, i.e. after 4.5 * sqrt(2).
    d = cast_ray_dda(grid, 5.5, 5.5, math.pi / 4.0, 40.0)
    assert d == pytest.approx(4.5 * math.sqrt(2.0))


def test_miss_returns_max_range():
    grid = OccupancyGrid2D.empty(10, 10)
    assert cast_ray_dda(grid, 5.0, 5.0, 0.0, 3.0) == 3.0


def test_start_inside_obstacle_is_zero():
    grid = OccupancyGrid2D.empty(5, 5)
    grid.set_occupied(2, 2)
    assert cast_ray_dda(grid, 2.5, 2.5, 1.0, 10.0) == 0.0


def test_map_edge_counts_as_hit():
    grid = OccupancyGrid2D.empty(8, 8)
    d = cast_ray_dda(grid, 4.0, 4.0, math.pi, 50.0)
    assert d <= 4.0 + 1e-9


def test_counts_cells(walled_grid):
    counts = {}
    cast_ray_dda(
        walled_grid, 2.5, 10.5, 0.0, 40.0,
        count=lambda n, k: counts.__setitem__(n, counts.get(n, 0) + k),
    )
    assert counts["raycast_cell_checks"] >= 12


@settings(max_examples=80, deadline=None)
@given(
    st.floats(1.2, 13.8),
    st.floats(1.2, 18.8),
    st.floats(-math.pi, math.pi),
)
def test_exact_matches_sampled_within_step(x, y, angle):
    """Property: the sampled caster converges to the exact caster.

    Origins are drawn strictly in free space (x < 15, y < 19 avoids both
    walls — a start inside an obstacle is a semantic difference, not an
    accuracy one: DDA reports 0, the marcher reports the next wall).
    Unless the ray merely clips an obstacle corner (chord through the
    obstacle shorter than the step — legitimate tunneling, quantified by
    the ray-cast ablation), the marcher overshoots by at most one step.
    """
    grid = OccupancyGrid2D.empty(30, 30)
    grid.fill_rect(0, 15, 29, 15)
    grid.fill_rect(20, 0, 23, 29)
    assert not grid.is_occupied_world(x, y)
    exact = cast_ray_dda(grid, x, y, angle, 40.0)
    sampled = cast_ray(grid, x, y, angle, 40.0, step=0.05)
    assert sampled >= exact - 1e-9  # sampling can only overshoot
    if sampled - exact > 0.05 + 1e-9:
        # The marcher skipped the first hit: only acceptable if the ray's
        # chord through the obstacle it clipped is shorter than the step.
        fine = 0.002
        chord = 0.0
        t = exact + fine
        while t < exact + 0.06:
            if grid.is_occupied_world(
                x + t * math.cos(angle), y + t * math.sin(angle)
            ):
                chord = t - exact
            else:
                break
            t += fine
        assert chord <= 0.05 + fine, (
            f"tunneled through a {chord:.3f} m chord with step 0.05"
        )


def test_vertical_and_horizontal_rays():
    grid = OccupancyGrid2D.empty(10, 10)
    grid.set_occupied(7, 3)
    up = cast_ray_dda(grid, 3.5, 2.5, math.pi / 2.0, 20.0)
    assert up == pytest.approx(4.5)
    right = cast_ray_dda(grid, 0.5, 7.5, 0.0, 20.0)
    assert right == pytest.approx(2.5)
