"""Tests for 3D path planning (05.pp3d)."""

import math

import numpy as np
import pytest

from repro.envs.mapgen import campus_like_3d
from repro.geometry.grid3d import OccupancyGrid3D
from repro.harness.profiler import PhaseProfiler
from repro.planning.pp3d import (
    Pp3dConfig,
    Pp3dKernel,
    far_apart_free_voxels,
    plan_3d,
)


@pytest.fixture
def open_volume():
    return OccupancyGrid3D.empty(10, 10, 10)


def test_plan_in_open_volume_is_diagonal(open_volume):
    result = plan_3d(open_volume, (1, 1, 1), (8, 8, 8))
    assert result.found
    assert result.cost == pytest.approx(7 * math.sqrt(3), rel=0.05)


def test_path_voxels_are_free_and_adjacent(open_volume):
    open_volume.fill_box(3, 3, 3, 6, 6, 6)
    result = plan_3d(open_volume, (1, 1, 1), (8, 8, 8))
    assert result.found
    for z, y, x in result.path:
        assert not open_volume.is_occupied(z, y, x)
    for a, b in zip(result.path[:-1], result.path[1:]):
        assert max(abs(a[i] - b[i]) for i in range(3)) == 1


def test_drone_flies_over_obstacle():
    """A wall spanning all low altitudes forces an altitude change."""
    grid = OccupancyGrid3D.empty(8, 10, 10)
    grid.fill_box(0, 4, 0, 4, 5, 9)  # wall up to z=4
    result = plan_3d(grid, (0, 1, 5), (0, 8, 5))
    assert result.found
    assert max(z for z, _, _ in result.path) > 4


def test_flying_under_overpass():
    """The campus overpass leaves clearance underneath."""
    grid = campus_like_3d(nx=48, ny=48, nz=16, seed=0)
    start, goal = far_apart_free_voxels(grid)
    result = plan_3d(grid, start, goal)
    assert result.found


def test_unreachable_returns_not_found():
    grid = OccupancyGrid3D.empty(6, 6, 6)
    grid.fill_box(0, 3, 0, 5, 3, 5)  # solid slab across all z
    result = plan_3d(grid, (1, 1, 1), (1, 5, 1))
    assert not result.found


def test_profiling_has_search_and_collision():
    grid = campus_like_3d(nx=32, ny=32, nz=12, seed=1)
    prof = PhaseProfiler()
    start, goal = far_apart_free_voxels(grid)
    plan_3d(grid, start, goal, profiler=prof)
    combined = prof.fraction("search") + prof.fraction("collision")
    assert combined > 0.7


def test_kernel_end_to_end_small():
    result = Pp3dKernel().run(Pp3dConfig(nx=48, ny=48, nz=12))
    assert result.output.found
    assert result.output.expansions > 0
