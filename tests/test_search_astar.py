"""Tests for A* and Weighted A*, including optimality property tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.profiler import PhaseProfiler
from repro.search.astar import astar, weighted_astar
from repro.search.dijkstra import dijkstra


class GraphSpace:
    """Explicit adjacency-list search space for testing."""

    def __init__(self, edges, goal, heuristic=None):
        self.edges = edges
        self.goal = goal
        self._h = heuristic or (lambda s: 0.0)

    def successors(self, state):
        return self.edges.get(state, [])

    def heuristic(self, state):
        return self._h(state)

    def is_goal(self, state):
        return state == self.goal


DIAMOND = {
    "s": [("a", 1.0), ("b", 4.0)],
    "a": [("g", 5.0)],
    "b": [("g", 1.0)],
}


def test_astar_finds_optimal_path():
    result = astar(GraphSpace(DIAMOND, "g"), "s")
    assert result.found
    assert result.path == ["s", "b", "g"]
    assert result.cost == pytest.approx(5.0)


def test_astar_unreachable_goal():
    result = astar(GraphSpace({"s": []}, "g"), "s")
    assert not result.found
    assert not result  # __bool__


def test_astar_start_is_goal():
    result = astar(GraphSpace({}, "s"), "s")
    assert result.found
    assert result.path == ["s"]
    assert result.cost == 0.0


def test_astar_max_expansions_caps_search():
    chain = {i: [(i + 1, 1.0)] for i in range(100)}
    result = astar(GraphSpace(chain, 100), 0, max_expansions=5)
    assert not result.found
    assert result.expansions <= 6


def test_weighted_astar_epsilon_below_one_raises():
    with pytest.raises(ValueError):
        weighted_astar(GraphSpace(DIAMOND, "g"), "s", epsilon=0.5)


def test_weighted_astar_cost_bound():
    """WA* cost is within epsilon of optimal (Pohl's bound)."""
    rng = np.random.default_rng(3)
    n = 40
    points = rng.random((n, 2)) * 10
    edges = {i: [] for i in range(n)}
    for i in range(n):
        dists = np.linalg.norm(points - points[i], axis=1)
        for j in np.argsort(dists)[1:5]:
            edges[i].append((int(j), float(dists[j])))

    def h(state):
        return float(np.linalg.norm(points[state] - points[n - 1]))

    space = GraphSpace(edges, n - 1, heuristic=h)
    optimal = astar(space, 0)
    assert optimal.found
    for epsilon in (1.5, 2.0, 5.0):
        res = weighted_astar(space, 0, epsilon=epsilon)
        assert res.found
        assert res.cost <= optimal.cost * epsilon + 1e-9


def test_weighted_astar_expands_no_more_than_astar_here():
    rng = np.random.default_rng(5)
    n = 60
    points = rng.random((n, 2)) * 10
    edges = {i: [] for i in range(n)}
    for i in range(n):
        dists = np.linalg.norm(points - points[i], axis=1)
        for j in np.argsort(dists)[1:5]:
            edges[i].append((int(j), float(dists[j])))

    def h(state):
        return float(np.linalg.norm(points[state] - points[n - 1]))

    space = GraphSpace(edges, n - 1, heuristic=h)
    plain = astar(space, 0)
    inflated = weighted_astar(space, 0, epsilon=3.0)
    assert plain.found and inflated.found
    assert inflated.expansions <= plain.expansions


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_astar_matches_dijkstra_on_random_graphs(seed):
    """Property: A* with zero heuristic equals Dijkstra's distances."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 25))
    edges = {i: [] for i in range(n)}
    for _ in range(n * 3):
        a = int(rng.integers(n))
        b = int(rng.integers(n))
        if a != b:
            edges[a].append((b, float(rng.uniform(0.1, 5.0))))
    goal = n - 1
    space = GraphSpace(edges, goal)
    result = astar(space, 0)
    distances = dijkstra(space, 0)
    if goal in distances:
        assert result.found
        assert result.cost == pytest.approx(distances[goal])
    else:
        assert not result.found


def test_astar_path_edges_exist_and_sum_to_cost():
    rng = np.random.default_rng(11)
    n = 30
    edges = {i: [] for i in range(n)}
    for _ in range(120):
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a != b:
            edges[a].append((b, float(rng.uniform(0.5, 2.0))))
    space = GraphSpace(edges, n - 1)
    result = astar(space, 0)
    if result.found:
        total = 0.0
        for a, b in zip(result.path[:-1], result.path[1:]):
            costs = [c for succ, c in edges[a] if succ == b]
            assert costs, f"edge {a}->{b} not in graph"
            total += min(costs)
        assert result.cost <= total + 1e-9


def test_astar_records_phases():
    prof = PhaseProfiler()
    astar(GraphSpace(DIAMOND, "g"), "s", profiler=prof)
    assert "search" in prof.stats
    assert prof.counters["astar_expansions"] >= 1
