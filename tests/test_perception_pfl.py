"""Tests for particle filter localization (01.pfl)."""

import numpy as np
import pytest

from repro.envs.mapgen import wean_hall_like
from repro.geometry.transforms import SE2
from repro.perception.particle_filter import (
    ParticleFilter,
    PflConfig,
    PflKernel,
    make_pfl_workload,
)
from repro.sensors.lidar import Lidar
from repro.sensors.odometry import OdometryModel, OdometryReading


@pytest.fixture(scope="module")
def small_workload():
    return make_pfl_workload(region=0, n_steps=10, n_beams=10, seed=0)


def _make_filter(workload, n=200, seed=0):
    return ParticleFilter(
        workload.grid,
        workload.lidar,
        workload.motion_model,
        n_particles=n,
        rng=np.random.default_rng(seed),
    )


def test_validation():
    grid = wean_hall_like(rows=40, cols=40)
    with pytest.raises(ValueError):
        ParticleFilter(grid, Lidar(), OdometryModel(), n_particles=0)


def test_initialize_uniform_spreads_over_free_space(small_workload):
    pf = _make_filter(small_workload)
    pf.initialize_uniform()
    occupied = small_workload.grid.occupied_world_batch(
        pf.poses[:, 0], pf.poses[:, 1]
    )
    assert not occupied.any()
    assert pf.spread() > 5.0  # building-scale spread


def test_initialize_around_concentrates(small_workload):
    pf = _make_filter(small_workload)
    pf.initialize_around(SE2(10.0, 10.0, 0.0), sigma_xy=0.1, sigma_theta=0.05)
    assert pf.spread() < 1.0


def test_update_reduces_spread(small_workload):
    pf = _make_filter(small_workload, n=400)
    pf.initialize_uniform()
    before = pf.spread()
    for odom, scan in zip(small_workload.odometry, small_workload.scans):
        pf.update(odom, scan)
    assert pf.spread() < before


def test_weights_stay_normalized(small_workload):
    pf = _make_filter(small_workload)
    pf.initialize_uniform()
    pf.update(small_workload.odometry[0], small_workload.scans[0])
    assert pf.weights.sum() == pytest.approx(1.0)
    assert (pf.weights >= 0).all()


def test_tracking_mode_follows_robot(small_workload):
    """Initialized at the true pose, the filter tracks it to the end."""
    pf = _make_filter(small_workload, n=300)
    pf.initialize_around(
        small_workload.true_poses[0], sigma_xy=0.3, sigma_theta=0.1
    )
    for odom, scan in zip(small_workload.odometry, small_workload.scans):
        pf.update(odom, scan)
    error = pf.estimate().distance_to(small_workload.true_poses[-1])
    assert error < 1.5


def test_estimate_circular_mean():
    grid = wean_hall_like(rows=40, cols=40)
    pf = ParticleFilter(grid, Lidar(n_beams=4), OdometryModel(),
                        n_particles=2, rng=np.random.default_rng(0))
    # Two particles straddling the +-pi seam must average to ~pi, not 0.
    pf.poses = np.array([[5.0, 5.0, np.pi - 0.1], [5.0, 5.0, -np.pi + 0.1]])
    pf.weights = np.array([0.5, 0.5])
    estimate = pf.estimate()
    assert abs(abs(estimate.theta) - np.pi) < 0.15


def test_resampling_preserves_particle_count(small_workload):
    pf = _make_filter(small_workload, n=123)
    pf.initialize_uniform()
    pf.update(small_workload.odometry[0], small_workload.scans[0])
    assert pf.poses.shape == (123, 3)


def test_degenerate_weights_recover(small_workload):
    """All-zero likelihoods fall back to uniform weights, not NaNs."""
    pf = _make_filter(small_workload)
    pf.initialize_uniform()
    impossible_scan = np.full(small_workload.lidar.n_beams, -1e6)
    pf.update(small_workload.odometry[0], impossible_scan)
    assert np.isfinite(pf.weights).all()
    assert pf.weights.sum() == pytest.approx(1.0)


def test_workload_regions_differ():
    a = make_pfl_workload(region=0, n_steps=5, seed=0)
    b = make_pfl_workload(region=2, n_steps=5, seed=0)
    assert a.true_poses[0].distance_to(b.true_poses[0]) > 1.0


def test_workload_odometry_consistent_with_poses():
    w = make_pfl_workload(region=1, n_steps=8, seed=1)
    assert len(w.odometry) == len(w.scans) == len(w.true_poses) - 1
    # Propagating the true pose through noiseless odometry reproduces it.
    model = OdometryModel(0, 0, 0, 0)
    rng = np.random.default_rng(0)
    pose = w.true_poses[0]
    for odom, target in zip(w.odometry, w.true_poses[1:]):
        pose = model.sample(pose, odom, rng)
        assert pose.distance_to(target) < 1e-6


def test_kidnapped_robot_recovery():
    """Augmented MCL: a filter initialized around the WRONG pose recovers
    once the injection mechanism reseeds hypotheses (paper-adjacent
    robustness; plain MCL would stay stuck forever)."""
    w = make_pfl_workload(region=0, n_steps=70, n_beams=24, seed=0,
                          map_rows=100, map_cols=120)
    true_start = w.true_poses[0]
    # A deliberately wrong prior, far from the robot.
    wrong = SE2(true_start.x + 15.0, true_start.y, true_start.theta + 2.0)
    pf = ParticleFilter(w.grid, w.lidar, w.motion_model, n_particles=2500,
                        rng=np.random.default_rng(1))
    pf.initialize_around(wrong, sigma_xy=1.0, sigma_theta=0.3)
    errors = []
    for odom, scan in zip(w.odometry, w.scans):
        pf.update(odom, scan)
        errors.append(pf.estimate().distance_to(
            w.true_poses[len(errors) + 1]))
    # The likelihood bookkeeping ran (injection trigger available)...
    assert pf.w_slow > 0.0
    # ...the injection reseeded the filter mid-run, and it fully
    # relocalized: sub-meter error by the end of the drive.
    assert errors[0] > 10.0
    assert errors[-1] < 1.0


def test_kernel_run_profiles_raycast():
    result = PflKernel().run(PflConfig(particles=150, beams=8, steps=5))
    assert result.profiler.fraction("raycast") > 0.4
    assert result.profiler.counters.get("raycast_cell_checks", 0) > 0
    assert "resample" in result.profiler.stats
